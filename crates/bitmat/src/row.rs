//! Hybrid-compressed bit rows (§4 of the paper).
//!
//! A BitMat row is stored either
//!
//! * as **runs** — maximal intervals of consecutive set bits (the
//!   information content of the paper's alternating run-length encoding
//!   `"[1] 3 2 4 1"`, with the same integer count up to ±1), or
//! * as **sparse positions** — the paper's hybrid fallback: *"if the number
//!   of set bits in a bit-row are less than the number of integers used to
//!   represent it, then we simply store the set bit positions"*.
//!
//! All operations (`or_into`, `and_mask`, iteration, membership) walk the
//! compressed representation; a row is never expanded into raw bits.

use crate::bitvec::BitVec;

/// Compressed representation of one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Repr {
    /// Maximal `[start, end)` intervals of set bits, ascending, disjoint,
    /// non-adjacent.
    Runs(Vec<(u32, u32)>),
    /// Ascending set-bit positions.
    Sparse(Vec<u32>),
}

/// One compressed bit row over a universe of `universe` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitRow {
    pub(crate) universe: u32,
    pub(crate) count: u32,
    pub(crate) repr: Repr,
}

impl BitRow {
    /// An empty row.
    pub fn empty(universe: u32) -> Self {
        BitRow {
            universe,
            count: 0,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A row with every bit set.
    pub fn full(universe: u32) -> Self {
        if universe == 0 {
            return Self::empty(0);
        }
        BitRow {
            universe,
            count: universe,
            repr: Repr::Runs(vec![(0, universe)]),
        }
    }

    /// Builds from strictly ascending set-bit positions.
    ///
    /// # Panics
    /// Panics (debug) if positions are unsorted, duplicated or out of range.
    pub fn from_sorted_positions(universe: u32, positions: &[u32]) -> Self {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be ascending"
        );
        debug_assert!(
            positions.last().is_none_or(|&p| p < universe),
            "position out of range"
        );
        let runs = runs_of(positions);
        Self::pick(universe, positions.len() as u32, runs, positions)
    }

    /// Builds from a dense mask.
    pub fn from_bitvec(v: &BitVec) -> Self {
        let positions: Vec<u32> = v.iter_ones().collect();
        Self::from_sorted_positions(v.len(), &positions)
    }

    /// Applies the hybrid rule: sparse iff `count < 2·n_runs` (each run
    /// costs two integers, each sparse bit one).
    fn pick(universe: u32, count: u32, runs: Vec<(u32, u32)>, positions: &[u32]) -> Self {
        if (count as usize) < 2 * runs.len() {
            BitRow {
                universe,
                count,
                repr: Repr::Sparse(positions.to_vec()),
            }
        } else {
            BitRow {
                universe,
                count,
                repr: Repr::Runs(runs),
            }
        }
    }

    /// Universe size in bits.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.count
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True when the row currently uses the sparse-positions representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Membership test (binary search on either representation).
    pub fn contains(&self, pos: u32) -> bool {
        match &self.repr {
            Repr::Sparse(ps) => ps.binary_search(&pos).is_ok(),
            Repr::Runs(rs) => match rs.binary_search_by(|&(s, _)| s.cmp(&pos)) {
                Ok(_) => true,
                Err(i) => i > 0 && pos < rs[i - 1].1,
            },
        }
    }

    /// Iterates set-bit positions in ascending order.
    pub fn iter_ones(&self) -> RowOnesIter<'_> {
        match &self.repr {
            Repr::Sparse(ps) => RowOnesIter::Sparse(ps.iter()),
            Repr::Runs(rs) => RowOnesIter::Runs {
                runs: rs.iter(),
                cur: None,
            },
        }
    }

    /// `acc |= self` — the building block of [`crate::BitMat::fold`].
    ///
    /// Runs are blitted word-wise ([`BitVec::set_range`]); sparse positions
    /// are batched into one word-level write per occupied word.
    pub fn or_into(&self, acc: &mut BitVec) {
        match &self.repr {
            Repr::Sparse(ps) => {
                if let Some(&last) = ps.last() {
                    assert!(last < acc.len(), "bit {last} out of range {}", acc.len());
                }
                let words = acc.words_mut();
                let mut i = 0;
                while i < ps.len() {
                    let w = ps[i] / 64;
                    let mut bits = 0u64;
                    while i < ps.len() && ps[i] / 64 == w {
                        bits |= 1u64 << (ps[i] % 64);
                        i += 1;
                    }
                    words[w as usize] |= bits;
                }
            }
            Repr::Runs(rs) => {
                for &(s, e) in rs {
                    acc.set_range(s, e);
                }
            }
        }
    }

    /// `acc |= self`, clipped: positions at or beyond `acc.len()` are
    /// ignored — the in-place equivalent of OR-ing a truncated copy. Used
    /// by the fold kernels to project straight into a (possibly shorter)
    /// join-variable binding space.
    pub fn or_into_clipped(&self, acc: &mut BitVec) {
        let len = acc.len();
        match &self.repr {
            Repr::Sparse(ps) => {
                let n = ps.partition_point(|&p| p < len);
                let words = acc.words_mut();
                let mut i = 0;
                while i < n {
                    let w = ps[i] / 64;
                    let mut bits = 0u64;
                    while i < n && ps[i] / 64 == w {
                        bits |= 1u64 << (ps[i] % 64);
                        i += 1;
                    }
                    words[w as usize] |= bits;
                }
            }
            Repr::Runs(rs) => {
                for &(s, e) in rs {
                    if s >= len {
                        break;
                    }
                    acc.set_range(s, e.min(len));
                }
            }
        }
    }

    /// `self & mask` — the building block of [`crate::BitMat::unfold`].
    ///
    /// Runs through the same kernels as [`BitRow::and_mask_in_place`] (run
    /// windows streamed word-by-word, sparse positions probed directly);
    /// prefer the in-place variant on hot paths — this one allocates the
    /// result row.
    pub fn and_mask(&self, mask: &BitVec) -> BitRow {
        debug_assert_eq!(mask.len(), self.universe, "mask/universe mismatch");
        let mut out = self.clone();
        let mut scratch = crate::kernel::SetScratch::default();
        out.and_mask_in_place(mask, &mut scratch);
        out
    }

    /// Expands to a dense mask (used by fold of single-row loads and tests).
    pub fn to_bitvec(&self) -> BitVec {
        let mut v = BitVec::zeros(self.universe);
        self.or_into(&mut v);
        v
    }

    /// Size in bytes under the hybrid encoding (4-byte integers, as in the
    /// paper, plus a 1-byte representation tag).
    pub fn encoded_bytes(&self) -> usize {
        1 + 4 * match &self.repr {
            Repr::Sparse(ps) => ps.len(),
            Repr::Runs(rs) => 2 * rs.len(),
        }
    }

    /// Serializes the row (little-endian; layout: tag, n, n or 2n u32s).
    pub fn write_to(&self, buf: &mut Vec<u8>) {
        match &self.repr {
            Repr::Sparse(ps) => {
                buf.push(0u8);
                buf.extend_from_slice(&(ps.len() as u32).to_le_bytes());
                for &p in ps {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
            }
            Repr::Runs(rs) => {
                buf.push(1u8);
                buf.extend_from_slice(&(rs.len() as u32).to_le_bytes());
                for &(s, e) in rs {
                    buf.extend_from_slice(&s.to_le_bytes());
                    buf.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
    }

    /// Deserializes a row written by [`BitRow::write_to`]; returns the row
    /// and the number of bytes consumed.
    pub fn read_from(bytes: &[u8], universe: u32) -> Option<(BitRow, usize)> {
        let tag = *bytes.first()?;
        let n = u32::from_le_bytes(bytes.get(1..5)?.try_into().ok()?) as usize;
        let rd_u32 = |i: usize| -> Option<u32> {
            Some(u32::from_le_bytes(
                bytes.get(5 + 4 * i..9 + 4 * i)?.try_into().ok()?,
            ))
        };
        match tag {
            0 => {
                let mut ps = Vec::with_capacity(n);
                for i in 0..n {
                    ps.push(rd_u32(i)?);
                }
                let count = ps.len() as u32;
                Some((
                    BitRow {
                        universe,
                        count,
                        repr: Repr::Sparse(ps),
                    },
                    5 + 4 * n,
                ))
            }
            1 => {
                let mut rs = Vec::with_capacity(n);
                let mut count = 0u32;
                for i in 0..n {
                    let s = rd_u32(2 * i)?;
                    let e = rd_u32(2 * i + 1)?;
                    if s >= e {
                        return None;
                    }
                    count += e - s;
                    rs.push((s, e));
                }
                Some((
                    BitRow {
                        universe,
                        count,
                        repr: Repr::Runs(rs),
                    },
                    5 + 8 * n,
                ))
            }
            _ => None,
        }
    }

    /// Serializes the row as little-endian `u32` words (the v2 segment
    /// layout): `[tag][n][n or 2n integers]`. Unlike [`BitRow::write_to`],
    /// every field is a full word, so a 4-byte-aligned payload can be
    /// reinterpreted as `&[u32]` and cursored zero-copy.
    pub fn write_words_to(&self, buf: &mut Vec<u8>) {
        match &self.repr {
            Repr::Sparse(ps) => {
                buf.extend_from_slice(&0u32.to_le_bytes());
                buf.extend_from_slice(&(ps.len() as u32).to_le_bytes());
                for &p in ps {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
            }
            Repr::Runs(rs) => {
                buf.extend_from_slice(&1u32.to_le_bytes());
                buf.extend_from_slice(&(rs.len() as u32).to_le_bytes());
                for &(s, e) in rs {
                    buf.extend_from_slice(&s.to_le_bytes());
                    buf.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
    }

    /// Deserializes a row written by [`BitRow::write_words_to`] from a word
    /// slice; returns the row and the number of **words** consumed. All
    /// invariants (tag validity, lengths, ascending positions, well-formed
    /// runs, universe bounds) are validated — corrupt input yields `None`,
    /// never a malformed row.
    pub fn read_from_words(words: &[u32], universe: u32) -> Option<(BitRow, usize)> {
        let tag = *words.first()?;
        let n = *words.get(1)? as usize;
        match tag {
            0 => {
                let ps = words.get(2..2 + n)?;
                if !ps.windows(2).all(|w| w[0] < w[1]) {
                    return None;
                }
                if ps.last().is_some_and(|&p| p >= universe) {
                    return None;
                }
                Some((
                    BitRow {
                        universe,
                        count: n as u32,
                        repr: Repr::Sparse(ps.to_vec()),
                    },
                    2 + n,
                ))
            }
            1 => {
                let flat = words.get(2..2 + 2 * n)?;
                let mut rs = Vec::with_capacity(n);
                let mut count = 0u32;
                let mut prev_end = 0u32;
                for pair in flat.chunks_exact(2) {
                    let (s, e) = (pair[0], pair[1]);
                    // Runs must ascend, be disjoint and non-adjacent.
                    if s >= e || e > universe || (!rs.is_empty() && s <= prev_end) {
                        return None;
                    }
                    count = count.checked_add(e - s)?;
                    prev_end = e;
                    rs.push((s, e));
                }
                Some((
                    BitRow {
                        universe,
                        count,
                        repr: Repr::Runs(rs),
                    },
                    2 + 2 * n,
                ))
            }
            _ => None,
        }
    }

    /// Size in bytes if the row were forced into run-length encoding —
    /// the ablation baseline for the paper's "40 % smaller" hybrid claim.
    pub fn rle_only_bytes(&self) -> usize {
        let n_runs = match &self.repr {
            Repr::Runs(rs) => rs.len(),
            Repr::Sparse(ps) => runs_of(ps).len(),
        };
        1 + 4 * 2 * n_runs
    }
}

/// Computes maximal `[start, end)` intervals from ascending positions.
fn runs_of(positions: &[u32]) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    runs_of_into(positions, &mut runs);
    runs
}

/// [`runs_of`] into a caller-owned buffer (cleared first).
pub(crate) fn runs_of_into(positions: &[u32], runs: &mut Vec<(u32, u32)>) {
    runs.clear();
    for &p in positions {
        match runs.last_mut() {
            Some((_, e)) if *e == p => *e = p + 1,
            _ => runs.push((p, p + 1)),
        }
    }
}

/// Iterator over the set bits of a [`BitRow`].
pub enum RowOnesIter<'a> {
    /// Sparse representation.
    Sparse(std::slice::Iter<'a, u32>),
    /// Run representation.
    Runs {
        /// Remaining runs.
        runs: std::slice::Iter<'a, (u32, u32)>,
        /// Position within the current run.
        cur: Option<(u32, u32)>,
    },
}

impl Iterator for RowOnesIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            RowOnesIter::Sparse(it) => it.next().copied(),
            RowOnesIter::Runs { runs, cur } => loop {
                if let Some((p, e)) = cur {
                    if *p < *e {
                        let out = *p;
                        *p += 1;
                        return Some(out);
                    }
                }
                match runs.next() {
                    Some(&(s, e)) => *cur = Some((s, e)),
                    None => return None,
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_rle() {
        // "1110011110" → three 1s, gap, four 1s.
        let row = BitRow::from_sorted_positions(10, &[0, 1, 2, 5, 6, 7, 8]);
        assert!(!row.is_sparse(), "7 set bits ≥ 2·2 run integers → runs");
        assert_eq!(row.count_ones(), 7);
        assert_eq!(
            row.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 5, 6, 7, 8]
        );
    }

    #[test]
    fn paper_example_sparse() {
        // "0010010000" → two isolated bits: sparse wins (2 < 2·2).
        let row = BitRow::from_sorted_positions(10, &[2, 5]);
        assert!(row.is_sparse());
        assert_eq!(row.encoded_bytes(), 1 + 8);
        assert!(row.rle_only_bytes() > row.encoded_bytes());
    }

    #[test]
    fn contains_both_reprs() {
        let sparse = BitRow::from_sorted_positions(100, &[3, 50, 99]);
        assert!(sparse.contains(50) && !sparse.contains(51));
        let runs = BitRow::from_sorted_positions(100, &[10, 11, 12, 13, 40, 41, 42, 43]);
        assert!(!runs.is_sparse());
        assert!(runs.contains(10) && runs.contains(13) && runs.contains(43));
        assert!(!runs.contains(9) && !runs.contains(14) && !runs.contains(99));
    }

    #[test]
    fn or_into_matches_positions() {
        let row = BitRow::from_sorted_positions(200, &[0, 1, 2, 3, 70, 130, 131, 132, 133, 199]);
        let mut acc = BitVec::zeros(200);
        row.or_into(&mut acc);
        assert_eq!(
            acc.iter_ones().collect::<Vec<_>>(),
            row.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn and_mask_run_window_clipping() {
        // Run spanning multiple words, mask with scattered bits.
        let positions: Vec<u32> = (60..140).collect();
        let row = BitRow::from_sorted_positions(256, &positions);
        let mask = BitVec::from_positions(256, [59, 60, 63, 64, 100, 139, 140, 200]);
        let out = row.and_mask(&mask);
        assert_eq!(
            out.iter_ones().collect::<Vec<_>>(),
            vec![60, 63, 64, 100, 139]
        );
    }

    #[test]
    fn and_mask_sparse() {
        let row = BitRow::from_sorted_positions(64, &[1, 9, 33]);
        let mask = BitVec::from_positions(64, [9, 40]);
        let out = row.and_mask(&mask);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![9]);
        assert_eq!(out.count_ones(), 1);
    }

    #[test]
    fn empty_and_full() {
        let e = BitRow::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.iter_ones().count(), 0);
        let f = BitRow::full(10);
        assert_eq!(f.count_ones(), 10);
        assert!(f.contains(9) && !f.contains(10));
        assert_eq!(BitRow::full(0).count_ones(), 0);
    }

    #[test]
    fn bitvec_roundtrip() {
        let v = BitVec::from_positions(300, [0, 1, 2, 3, 4, 64, 65, 299]);
        let row = BitRow::from_bitvec(&v);
        assert_eq!(row.to_bitvec(), v);
    }

    #[test]
    fn hybrid_boundary() {
        // Exactly count == 2 * n_runs → runs (rule is strict <).
        let row = BitRow::from_sorted_positions(20, &[0, 1, 10, 11]);
        assert!(!row.is_sparse());
        // count 3 < 2*2 runs → sparse.
        let row = BitRow::from_sorted_positions(20, &[0, 1, 10]);
        assert!(row.is_sparse());
    }
}
