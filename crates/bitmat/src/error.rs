//! Error type for BitMat storage.

use std::fmt;

/// Errors produced by index construction and (de)serialization.
#[derive(Debug)]
pub enum BitMatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The on-disk index is malformed.
    Corrupt(String),
    /// A requested matrix key is outside the catalog's dimensions.
    KeyOutOfRange {
        /// Which family was queried (`"S-O"`, `"P-S"`, …).
        family: &'static str,
        /// The offending key.
        key: u32,
    },
}

impl fmt::Display for BitMatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitMatError::Io(e) => write!(f, "I/O error: {e}"),
            BitMatError::Corrupt(m) => write!(f, "corrupt BitMat index: {m}"),
            BitMatError::KeyOutOfRange { family, key } => {
                write!(f, "key {key} out of range for {family} BitMats")
            }
        }
    }
}

impl std::error::Error for BitMatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BitMatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BitMatError {
    fn from(e: std::io::Error) -> Self {
        BitMatError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(BitMatError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(BitMatError::KeyOutOfRange {
            family: "S-O",
            key: 7
        }
        .to_string()
        .contains("S-O"));
        let io = BitMatError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
