//! # lbr-bitmat
//!
//! Compressed BitMat indexes for RDF graphs — the index substrate of the
//! Left Bit Right (LBR) paper (§4, Appendix D).
//!
//! The RDF dataset is conceptually a 3-D bitcube of dimensions
//! `|Vs| × |Vp| × |Vo|`; a bit is set iff the corresponding `(S P O)` triple
//! exists. Slicing the cube yields four families of 2-D BitMats:
//!
//! * **S-O** and **O-S** BitMats per predicate (slicing the P dimension;
//!   O-S is the transpose of S-O),
//! * **P-O** BitMats per subject (slicing the S dimension),
//! * **P-S** BitMats per object (slicing the O dimension),
//!
//! for a total of `2·|Vp| + |Vs| + |Vo|` matrices ([`BitMatStore`]).
//!
//! Each matrix row is compressed with the paper's *hybrid* scheme
//! ([`BitRow`]): run-length encoding with 4-byte run lengths, or a plain
//! list of set-bit positions when that is smaller (the paper reports ≈40 %
//! index-size reduction from the hybrid scheme; see
//! [`BitMatStore::size_report`]).
//!
//! The two primitives every LBR semi-join is built from operate directly on
//! the compressed rows:
//!
//! * [`BitMat::fold`] — project the distinct values of one dimension into a
//!   dense bit-mask (bitwise OR over the other dimension);
//! * [`BitMat::unfold`] — clear all bits whose coordinate in the retained
//!   dimension is absent from a mask.
//!
//! ## The kernel layer
//!
//! Underneath fold/unfold sits the [`kernel`] module: run-aware set-algebra
//! kernels that operate **directly on the hybrid representations** without
//! ever densifying a row. The fold/unfold semi-join path runs on the
//! row×mask kernel (the mask's words streamed through each run window);
//! the row-level forms — run×run interval clipping, run×sparse probing,
//! sparse×sparse galloping, and the k-way leapfrog cursor join — make up
//! the general intersection layer. The in-place entry points
//! ([`BitRow::and_mask_in_place`], [`BitRow::and_row_into`],
//! [`kernel::intersect_into`], [`BitMat::unfold_with`],
//! [`BitMat::fold_or_clipped`]) write into caller-owned [`SetScratch`] /
//! accumulator buffers, so a steady-state pruning pass performs **zero
//! heap allocation**: buffers grow to a high-water mark on the first use
//! and circulate between scratch and destination rows afterwards.

//! ## Unsafe policy
//!
//! The mmap'd segment path ([`mmap`], used by [`DiskCatalog`]) requires
//! real `unsafe` (the `mmap(2)` FFI and `&[u8]` → `&[u32]` reinterpretation),
//! so this crate no longer carries `#![forbid(unsafe_code)]`. Instead,
//! `lbr-analyze` statically enforces that **all** unsafe in this crate is
//! confined to `mmap.rs` and that every site carries a `// SAFETY:`
//! comment; everything above the [`mmap::Mmap`] handle is safe code over
//! ordinary slices.

pub mod bitvec;
pub mod catalog;
pub mod disk;
pub mod error;
pub mod kernel;
pub mod matrix;
pub mod mmap;
pub mod row;
pub mod store;

pub use bitvec::BitVec;
pub use catalog::{Catalog, CubeDims};
pub use disk::{DiskCatalog, MappedMatrix};
pub use error::BitMatError;
pub use kernel::{RowCursor, SetScratch};
pub use matrix::{BitMat, RetainDim};
pub use mmap::Mmap;
pub use row::BitRow;
pub use store::{compute_shard_ranges, BitMatStore, SizeReport, DEFAULT_SHARDS};
