//! Dense word-level bit vectors, used as the β mask arrays of the paper's
//! `fold`/`unfold` primitives (Algorithms 5.2 and 5.3).
//!
//! Masks are transient per-query objects over one bitcube dimension, so a
//! dense `u64`-word representation is the right trade-off: `AND`ing two
//! masks (the core of a semi-join) is a straight word loop.

/// A fixed-length dense bit vector.
///
/// `Default` is the zero-length vector — the natural seed for a reusable
/// scratch accumulator that [`BitVec::reset`] will size on first use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: u32,
}

impl BitVec {
    /// All-zeros vector of `len` bits.
    pub fn zeros(len: u32) -> Self {
        BitVec {
            words: vec![0; Self::n_words(len)],
            len,
        }
    }

    /// All-ones vector of `len` bits.
    pub fn ones(len: u32) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; Self::n_words(len)],
            len,
        };
        v.trim_tail();
        v
    }

    /// Builds from an iterator of set-bit positions (any order, in range).
    pub fn from_positions(len: u32, positions: impl IntoIterator<Item = u32>) -> Self {
        let mut v = Self::zeros(len);
        for p in positions {
            v.set(p);
        }
        v
    }

    fn n_words(len: u32) -> usize {
        (len as usize).div_ceil(64)
    }

    /// Zeroes any bits beyond `len` in the last word (keeps counts honest).
    fn trim_tail(&mut self) {
        let tail = (self.len % 64) as u64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Capacity of the word buffer — lets scratch-pool owners observe
    /// whether an in-place operation had to grow (allocate).
    pub fn word_capacity(&self) -> usize {
        self.words.capacity()
    }

    /// True when `len == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: u32) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: u32) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i` (out-of-range reads return `false`).
    pub fn get(&self, i: u32) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// `self &= other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates set-bit positions in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw word access (read-only), used by [`crate::BitRow`] to stream
    /// mask windows without per-bit calls.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Raw word access (mutable), used by the word-batched sparse path of
    /// [`crate::BitRow::or_into`].
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Reuses this vector as an all-zeros vector of `len` bits, keeping the
    /// word buffer's capacity. Returns `true` when the buffer had to grow
    /// (i.e. the call allocated); steady-state reuse returns `false`.
    pub fn reset(&mut self, len: u32) -> bool {
        let n = Self::n_words(len);
        let grew = n > self.words.capacity();
        self.words.clear();
        self.words.resize(n, 0);
        self.len = len;
        grew
    }

    /// Reuses this vector as an all-ones vector of `len` bits (see
    /// [`BitVec::reset`]); returns `true` when the buffer had to grow.
    pub fn reset_ones(&mut self, len: u32) -> bool {
        let n = Self::n_words(len);
        let grew = n > self.words.capacity();
        self.words.clear();
        self.words.resize(n, u64::MAX);
        self.len = len;
        self.trim_tail();
        grew
    }

    /// `self |= other`, clipped: bits of `other` beyond `self.len` are
    /// ignored (the in-place equivalent of `or_assign(&other.resized(..))`).
    pub fn or_clipped(&mut self, other: &BitVec) {
        let n = self.words.len().min(other.words.len());
        for (a, b) in self.words[..n].iter_mut().zip(&other.words[..n]) {
            *a |= b;
        }
        self.trim_tail();
    }

    /// `self &= other`, clipped: bits beyond `other.len` read as zero (the
    /// in-place equivalent of `and_assign(&other.resized(self.len))`).
    pub fn and_clipped(&mut self, other: &BitVec) {
        let n = self.words.len().min(other.words.len());
        for (a, b) in self.words[..n].iter_mut().zip(&other.words[..n]) {
            *a &= b;
        }
        for a in self.words[n..].iter_mut() {
            *a = 0;
        }
    }

    /// A copy resized to `len` bits: truncation drops high bits, extension
    /// pads with zeros. Used to move masks between a BitMat dimension and a
    /// join variable's binding space (the shared S-O prefix, Appendix D).
    pub fn resized(&self, len: u32) -> BitVec {
        let mut out = BitVec::zeros(len);
        let n = out.words.len().min(self.words.len());
        out.words[..n].copy_from_slice(&self.words[..n]);
        out.trim_tail();
        out
    }

    /// Sets the word-aligned range `[from, to)` of bits, used by RLE runs.
    pub(crate) fn set_range(&mut self, from: u32, to: u32) {
        debug_assert!(to <= self.len);
        if from >= to {
            return;
        }
        let (fw, fb) = ((from / 64) as usize, from % 64);
        let (lw, lb) = (((to - 1) / 64) as usize, (to - 1) % 64 + 1);
        if fw == lw {
            let mask = (u64::MAX << fb) & (u64::MAX >> (64 - lb));
            self.words[fw] |= mask;
        } else {
            self.words[fw] |= u64::MAX << fb;
            for w in &mut self.words[fw + 1..lw] {
                *w = u64::MAX;
            }
            self.words[lw] |= u64::MAX >> (64 - lb);
        }
    }
}

/// Iterator over set-bit positions of a [`BitVec`].
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some(self.word_idx as u32 * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut v = BitVec::zeros(130);
        assert!(!v.get(0));
        v.set(0);
        v.set(64);
        v.set(129);
        assert!(v.get(0) && v.get(64) && v.get(129));
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
        assert!(!v.get(500)); // out-of-range read is false
    }

    #[test]
    fn ones_respects_length() {
        let v = BitVec::ones(67);
        assert_eq!(v.count_ones(), 67);
        assert!(v.get(66));
        assert!(!v.get(67));
    }

    #[test]
    fn and_or() {
        let mut a = BitVec::from_positions(100, [1, 5, 64, 99]);
        let b = BitVec::from_positions(100, [5, 64, 70]);
        let mut c = a.clone();
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![5, 64]);
        c.or_assign(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 5, 64, 70, 99]);
    }

    #[test]
    fn iter_ones_order() {
        let v = BitVec::from_positions(200, [199, 0, 63, 64, 128]);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn set_range_spanning_words() {
        let mut v = BitVec::zeros(200);
        v.set_range(60, 131);
        assert_eq!(v.count_ones(), 71);
        assert!(!v.get(59));
        assert!(v.get(60));
        assert!(v.get(130));
        assert!(!v.get(131));
        // Empty and single-word ranges.
        let mut w = BitVec::zeros(64);
        w.set_range(10, 10);
        assert!(w.is_zero());
        w.set_range(3, 7);
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn zero_length_vector() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.is_zero());
        assert_eq!(v.iter_ones().count(), 0);
        let o = BitVec::ones(0);
        assert_eq!(o.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::zeros(10).set(10);
    }

    #[test]
    fn resized_truncates_and_pads() {
        let v = BitVec::from_positions(100, [0, 63, 64, 99]);
        let small = v.resized(64);
        assert_eq!(small.iter_ones().collect::<Vec<_>>(), vec![0, 63]);
        assert_eq!(small.len(), 64);
        let big = v.resized(200);
        assert_eq!(big.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 99]);
        assert!(!big.get(150));
        // Truncation inside a word must clear tail bits.
        let t = v.resized(64 + 1);
        assert_eq!(t.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64]);
    }
}
