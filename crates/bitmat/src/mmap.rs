//! Read-only memory mapping for on-disk segments.
//!
//! The workspace is dependency-free, so `mmap(2)` / `munmap(2)` are
//! declared by hand instead of through the `libc` crate. This module is
//! the **only** place in `lbr-bitmat` allowed to contain `unsafe`
//! (enforced by `lbr-analyze`'s unsafe-confinement lint): it exposes a
//! safe [`Mmap`] handle whose lifetime owns the mapping, and everything
//! above it works on ordinary `&[u8]` / `&[u32]` slices.

use crate::error::BitMatError;
use std::ffi::c_void;
use std::fs::File;
use std::os::unix::io::AsRawFd;

// Values from the Linux / POSIX ABI (asm-generic/mman-common.h); stable
// across architectures this crate targets (x86_64, aarch64).
const PROT_READ: i32 = 1;
const MAP_PRIVATE: i32 = 2;

extern "C" {
    // POSIX: void *mmap(void *addr, size_t len, int prot, int flags,
    //                   int fd, off_t offset);
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    // POSIX: int munmap(void *addr, size_t len);
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

/// A read-only, private, whole-file memory mapping.
///
/// The mapped bytes are immutable for the mapping's lifetime (PROT_READ +
/// MAP_PRIVATE: writes by other processes to the underlying file may or
/// may not be visible, but the segment files written by
/// [`crate::disk::save_store`] are immutable once renamed into place, so
/// the contents are stable in practice).
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only (PROT_READ) and owned exclusively by
// this handle; `&[u8]` views handed out borrow `self`, so aliasing rules
// are upheld and concurrent reads from any thread are safe.
unsafe impl Send for Mmap {}
// SAFETY: as above — shared read-only memory with no interior mutability.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the entire file read-only. An empty file maps to an empty
    /// slice without calling `mmap` (POSIX rejects zero-length mappings).
    pub fn map(file: &File) -> Result<Mmap, BitMatError> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(BitMatError::Corrupt("file too large to map".into()));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: FFI call with a valid open fd; NULL addr lets the kernel
        // choose placement; `len` is the exact file size so the mapping
        // never extends past EOF pages we intend to read. The result is
        // checked against MAP_FAILED before use.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(BitMatError::Io(std::io::Error::last_os_error()));
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes
        // (established in `map`, released only in `drop`); the returned
        // slice borrows `self`, so it cannot outlive the mapping.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: `ptr`/`len` describe the exact mapping returned by
            // `mmap` in `map`; it is unmapped exactly once (drop runs once
            // and no other code calls munmap).
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// Reinterprets a 4-byte-aligned byte slice as little-endian `u32` words.
///
/// Returns `None` when the slice is misaligned or its length is not a
/// multiple of four — callers treat that as a corrupt segment, never UB.
/// (Segment files are laid out so every integer array is 4-byte aligned
/// relative to the page-aligned mapping base; see `disk.rs`.)
pub fn words_of(bytes: &[u8]) -> Option<&[u32]> {
    if !bytes.len().is_multiple_of(4) || bytes.as_ptr().align_offset(4) != 0 {
        return None;
    }
    if cfg!(target_endian = "big") {
        // The format is little-endian on disk; a zero-copy view would
        // read scrambled values on BE hosts. No such target is supported,
        // but fail safe instead of corrupting silently.
        return None;
    }
    // SAFETY: alignment and length were checked above; u32 has no
    // invalid bit patterns; the lifetime is inherited from `bytes`, and
    // the underlying mapping is read-only so no mutation can race.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join("lbr_mmap_test_contents.bin");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello bitmat").unwrap();
        f.sync_all().unwrap();
        let m = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(m.as_slice(), b"hello bitmat");
        assert_eq!(m.len(), 12);
        drop(m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = std::env::temp_dir().join("lbr_mmap_test_empty.bin");
        File::create(&path).unwrap();
        let m = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn words_of_checks_alignment_and_length() {
        let buf: Vec<u8> = vec![1, 0, 0, 0, 2, 0, 0, 0];
        // Vec<u8> allocations are sufficiently aligned in practice, but be
        // defensive: only assert on the aligned case.
        if buf.as_ptr().align_offset(4) == 0 {
            assert_eq!(words_of(&buf), Some(&[1u32, 2][..]));
            assert_eq!(words_of(&buf[..7]), None, "length not multiple of 4");
            assert_eq!(words_of(&buf[1..5]), None, "misaligned");
        }
    }

    #[test]
    fn mapping_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }
}
