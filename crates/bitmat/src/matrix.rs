//! 2-D BitMats with the paper's `fold` / `unfold` primitives.

use crate::bitvec::BitVec;
use crate::kernel::SetScratch;
use crate::row::BitRow;

/// Which dimension a `fold`/`unfold` retains (the paper's
/// `RetainDimension` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainDim {
    /// The row dimension of this matrix.
    Row,
    /// The column dimension of this matrix.
    Col,
}

/// A sparse 2-D bit matrix: non-empty rows only, each hybrid-compressed.
///
/// For an S-O BitMat of predicate `p`, a set bit `(s, o)` means the triple
/// `(s p o)` exists. Folds project one dimension; unfolds clear bits whose
/// retained-dimension coordinate is absent from a mask — together they
/// implement the paper's semi-joins without decompressing rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMat {
    n_rows: u32,
    n_cols: u32,
    /// Non-empty rows, ascending by row index.
    rows: Vec<(u32, BitRow)>,
    count: u64,
}

impl BitMat {
    /// An empty matrix.
    pub fn empty(n_rows: u32, n_cols: u32) -> Self {
        BitMat {
            n_rows,
            n_cols,
            rows: Vec::new(),
            count: 0,
        }
    }

    /// Builds from `(row, col)` pairs sorted ascending by `(row, col)` with
    /// no duplicates.
    pub fn from_sorted_pairs(n_rows: u32, n_cols: u32, pairs: &[(u32, u32)]) -> Self {
        let mut rows: Vec<(u32, BitRow)> = Vec::new();
        let mut i = 0;
        let mut cols: Vec<u32> = Vec::new();
        while i < pairs.len() {
            let r = pairs[i].0;
            cols.clear();
            while i < pairs.len() && pairs[i].0 == r {
                cols.push(pairs[i].1);
                i += 1;
            }
            debug_assert!(r < n_rows, "row out of range");
            rows.push((r, BitRow::from_sorted_positions(n_cols, &cols)));
        }
        let count = pairs.len() as u64;
        BitMat {
            n_rows,
            n_cols,
            rows,
            count,
        }
    }

    /// Builds a matrix from pre-compressed rows (ascending, non-empty).
    pub fn from_rows(n_rows: u32, n_cols: u32, rows: Vec<(u32, BitRow)>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        let count = rows.iter().map(|(_, r)| r.count_ones() as u64).sum();
        BitMat {
            n_rows,
            n_cols,
            rows,
            count,
        }
    }

    /// Number of rows in the (conceptual, dense) row dimension.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns in the column dimension.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of set bits (triples held by this matrix).
    pub fn triple_count(&self) -> u64 {
        self.count
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty rows, ascending by row index.
    pub fn rows(&self) -> &[(u32, BitRow)] {
        &self.rows
    }

    /// Fetches a row by index (binary search; `None` if empty).
    pub fn row(&self, r: u32) -> Option<&BitRow> {
        self.rows
            .binary_search_by_key(&r, |&(id, _)| id)
            .ok()
            .map(|i| &self.rows[i].1)
    }

    /// Membership test for a single bit.
    pub fn get(&self, r: u32, c: u32) -> bool {
        self.row(r).is_some_and(|row| row.contains(c))
    }

    /// `fold(BM, dim)` — projects the distinct coordinates of `dim`
    /// (paper: `fold(BMtp, dim?j) ≡ π?j(BMtp)`).
    ///
    /// * `Row`: a mask with one bit per **non-empty row** (no row needs to
    ///   be decompressed — row presence is already explicit),
    /// * `Col`: the bitwise OR of all rows, streamed run-wise.
    pub fn fold(&self, dim: RetainDim) -> BitVec {
        let mut v = BitVec::zeros(match dim {
            RetainDim::Row => self.n_rows,
            RetainDim::Col => self.n_cols,
        });
        self.fold_or_clipped(dim, &mut v);
        v
    }

    /// `acc |= fold(BM, dim)`, clipped to `acc.len()` — the in-place fold
    /// kernel: projects straight into a caller-owned accumulator that may
    /// live in a shorter (shared-prefix) binding space, without allocating
    /// the intermediate mask `fold().resized()` would.
    pub fn fold_or_clipped(&self, dim: RetainDim, acc: &mut BitVec) {
        match dim {
            RetainDim::Row => {
                // Rows ascend, so the first out-of-space row ends the scan.
                for &(r, _) in &self.rows {
                    if r >= acc.len() {
                        break;
                    }
                    acc.set(r);
                }
            }
            RetainDim::Col => {
                for (_, row) in &self.rows {
                    row.or_into_clipped(acc);
                }
            }
        }
    }

    /// `unfold(BM, mask, dim)` — clears every bit whose `dim` coordinate is
    /// **not** set in `mask` (paper: keep triples `t` with `t.?j ∈ β?j`).
    ///
    /// * `Row`: drops rows absent from the mask (O(#rows), no row touched),
    /// * `Col`: ANDs every row with the mask, dropping emptied rows.
    ///
    /// Allocating convenience wrapper over [`BitMat::unfold_with`].
    pub fn unfold(&mut self, mask: &BitVec, dim: RetainDim) {
        match dim {
            RetainDim::Row => debug_assert_eq!(mask.len(), self.n_rows),
            RetainDim::Col => debug_assert_eq!(mask.len(), self.n_cols),
        }
        let mut scratch = SetScratch::default();
        self.unfold_with(mask, dim, &mut scratch);
    }

    /// [`BitMat::unfold`] through caller-owned kernel scratch, with clipped
    /// mask semantics: mask bits beyond `mask.len()` read as zero, so the
    /// mask may live in a shorter (shared-prefix) or longer binding space
    /// without a resizing copy. Steady-state calls perform no heap
    /// allocation (rows are rewritten in place via
    /// [`BitRow::and_mask_in_place`]).
    pub fn unfold_with(&mut self, mask: &BitVec, dim: RetainDim, scratch: &mut SetScratch) {
        match dim {
            RetainDim::Row => {
                // Out-of-range reads are false, matching the zero-padding
                // of a resized mask.
                self.rows.retain(|&(r, _)| mask.get(r));
            }
            RetainDim::Col => {
                for (_, row) in self.rows.iter_mut() {
                    row.and_mask_in_place(mask, scratch);
                }
                self.rows.retain(|(_, row)| !row.is_empty());
            }
        }
        self.count = self.rows.iter().map(|(_, r)| r.count_ones() as u64).sum();
    }

    /// Transposed copy (rows ↔ columns). An O-S BitMat is the transpose of
    /// the corresponding S-O BitMat (§4).
    pub fn transpose(&self) -> BitMat {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.count as usize);
        for (r, row) in &self.rows {
            for c in row.iter_ones() {
                pairs.push((c, *r));
            }
        }
        pairs.sort_unstable();
        BitMat::from_sorted_pairs(self.n_cols, self.n_rows, &pairs)
    }

    /// Iterates set bits as `(row, col)`, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.rows
            .iter()
            .flat_map(|(r, row)| row.iter_ones().map(move |c| (*r, c)))
    }

    /// Hybrid-encoded size in bytes (per-row tag + integers + row directory).
    pub fn encoded_bytes(&self) -> usize {
        // 8 bytes of row directory (id + offset) per non-empty row.
        self.rows
            .iter()
            .map(|(_, r)| r.encoded_bytes() + 8)
            .sum::<usize>()
            + 24
    }

    /// Size in bytes if every row were forced into pure RLE (ablation).
    pub fn rle_only_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|(_, r)| r.rle_only_bytes() + 8)
            .sum::<usize>()
            + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The S-O BitMat of predicate `:actedIn` from Figure 4.1 of the paper
    /// (data of Figure 3.2), with IDs assigned in first-seen order:
    /// subjects {Julia=0, Larry=1}, objects {Seinfeld=0, Veep=1,
    /// NewAdvOldChristine=2, CurbYourEnthu=3}.
    fn acted_in() -> BitMat {
        BitMat::from_sorted_pairs(2, 4, &[(0, 0), (0, 1), (0, 2), (0, 3), (1, 3)])
    }

    #[test]
    fn figure_4_1_counts() {
        let m = acted_in();
        assert_eq!(m.triple_count(), 5);
        assert!(m.get(0, 0) && m.get(1, 3));
        assert!(!m.get(1, 0));
        assert_eq!(m.row(1).unwrap().count_ones(), 1);
        assert!(m.row(5).is_none());
    }

    #[test]
    fn fold_row_and_col() {
        let m = acted_in();
        assert_eq!(
            m.fold(RetainDim::Row).iter_ones().collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            m.fold(RetainDim::Col).iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn unfold_col_removes_bindings() {
        // Keep only object Seinfeld(0): Larry's row empties out — exactly the
        // ripple effect of Example-1 in §3.1.
        let mut m = acted_in();
        let mask = BitVec::from_positions(4, [0]);
        m.unfold(&mask, RetainDim::Col);
        assert_eq!(m.triple_count(), 1);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(0, 0)]);
        assert_eq!(
            m.fold(RetainDim::Row).iter_ones().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn unfold_row() {
        let mut m = acted_in();
        let mask = BitVec::from_positions(2, [1]);
        m.unfold(&mask, RetainDim::Row);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(1, 3)]);
        assert_eq!(m.triple_count(), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = acted_in();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.triple_count(), m.triple_count());
        assert!(t.get(3, 1) && t.get(0, 0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn empty_matrix_behaviour() {
        let mut m = BitMat::empty(3, 3);
        assert!(m.is_empty());
        assert_eq!(m.fold(RetainDim::Col).count_ones(), 0);
        m.unfold(&BitVec::ones(3), RetainDim::Col);
        assert!(m.is_empty());
        assert_eq!(m.transpose().triple_count(), 0);
    }

    #[test]
    fn sizes_hybrid_not_larger_than_rle() {
        let m = acted_in();
        assert!(m.encoded_bytes() <= m.rle_only_bytes());
    }
}
