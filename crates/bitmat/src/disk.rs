//! On-disk BitMat index format and the lazy [`DiskCatalog`].
//!
//! The paper keeps its `2|Vp| + |Vs| + |Vo|` BitMats on disk (20–41 GB) and
//! loads only the matrices a query's triple patterns need. We mirror that
//! with a single index file:
//!
//! ```text
//! magic "LBRBM001"
//! dims  n_subjects u32 | n_predicates u32 | n_objects u32 | n_shared u32 | n_triples u64
//! toc   4 families × [ n_mats u32 | (key u32, offset u64, len u64, count u64) × n_mats ]
//! blobs per matrix:
//!       n_rows u32 | n_cols u32 | count u64 | n_present u32
//!       row directory: (row_id u32, row_count u32, rel_offset u32) × n_present
//!       row payloads (BitRow::write_to)
//! ```
//!
//! The row directory allows `load_*_row` (the paper's single-row loads for
//! two-fixed-position patterns) and `count_*_row` (selectivity metadata) to
//! read only a directory plus one row, never the whole matrix.

use crate::catalog::{Catalog, CubeDims};
use crate::error::BitMatError;
use crate::matrix::BitMat;
use crate::row::BitRow;
use crate::store::BitMatStore;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

const MAGIC: &[u8; 8] = b"LBRBM001";

/// Cached row directory of one matrix: `row_id → (count, rel_offset)`.
type RowDir = HashMap<u32, (u32, u32)>;

/// Family tags used in the TOC, in serialization order.
const FAMILIES: [&str; 4] = ["S-O", "O-S", "P-O", "P-S"];

#[derive(Debug, Clone, Copy)]
struct TocEntry {
    offset: u64,
    len: u64,
    count: u64,
}

/// Serializes a store to `path`, returning the number of bytes written.
pub fn save_store(store: &BitMatStore, path: &Path) -> Result<u64, BitMatError> {
    let dims = store.dims();
    let mut toc: [Vec<(u32, u64, u64, u64)>; 4] = Default::default();
    let mut blobs: Vec<u8> = Vec::new();
    for (fam, key, mat) in store.iter_families() {
        if mat.is_empty() {
            continue;
        }
        let offset = blobs.len() as u64;
        encode_matrix(mat, &mut blobs);
        let len = blobs.len() as u64 - offset;
        toc[fam as usize].push((key, offset, len, mat.triple_count()));
    }
    let mut header: Vec<u8> = Vec::new();
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&dims.n_subjects.to_le_bytes());
    header.extend_from_slice(&dims.n_predicates.to_le_bytes());
    header.extend_from_slice(&dims.n_objects.to_le_bytes());
    header.extend_from_slice(&dims.n_shared.to_le_bytes());
    header.extend_from_slice(&dims.n_triples.to_le_bytes());
    for entries in &toc {
        header.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for &(key, offset, len, count) in entries {
            header.extend_from_slice(&key.to_le_bytes());
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&len.to_le_bytes());
            header.extend_from_slice(&count.to_le_bytes());
        }
    }
    let mut f = File::create(path)?;
    f.write_all(&header)?;
    f.write_all(&blobs)?;
    f.flush()?;
    Ok(header.len() as u64 + blobs.len() as u64)
}

fn encode_matrix(mat: &BitMat, out: &mut Vec<u8>) {
    out.extend_from_slice(&mat.n_rows().to_le_bytes());
    out.extend_from_slice(&mat.n_cols().to_le_bytes());
    out.extend_from_slice(&mat.triple_count().to_le_bytes());
    out.extend_from_slice(&(mat.rows().len() as u32).to_le_bytes());
    // Two passes: payloads first into a scratch buffer to learn offsets.
    let mut payload: Vec<u8> = Vec::new();
    let mut dir: Vec<(u32, u32, u32)> = Vec::with_capacity(mat.rows().len());
    for (id, row) in mat.rows() {
        let rel = payload.len() as u32;
        row.write_to(&mut payload);
        dir.push((*id, row.count_ones(), rel));
    }
    for (id, cnt, rel) in dir {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&cnt.to_le_bytes());
        out.extend_from_slice(&rel.to_le_bytes());
    }
    out.extend_from_slice(&payload);
}

fn decode_matrix(bytes: &[u8]) -> Result<BitMat, BitMatError> {
    let corrupt = |m: &str| BitMatError::Corrupt(m.to_string());
    let rd_u32 = |at: usize| -> Result<u32, BitMatError> {
        Ok(u32::from_le_bytes(
            bytes
                .get(at..at + 4)
                .ok_or_else(|| corrupt("truncated u32"))?
                .try_into()
                .unwrap(),
        ))
    };
    let n_rows = rd_u32(0)?;
    let n_cols = rd_u32(4)?;
    let n_present = rd_u32(16)? as usize;
    let dir_start = 20;
    let payload_start = dir_start + 12 * n_present;
    let mut rows: Vec<(u32, BitRow)> = Vec::with_capacity(n_present);
    for i in 0..n_present {
        let id = rd_u32(dir_start + 12 * i)?;
        let rel = rd_u32(dir_start + 12 * i + 8)? as usize;
        let slice = bytes
            .get(payload_start + rel..)
            .ok_or_else(|| corrupt("bad row offset"))?;
        let (row, _) =
            BitRow::read_from(slice, n_cols).ok_or_else(|| corrupt("bad row payload"))?;
        rows.push((id, row));
    }
    Ok(BitMat::from_rows(n_rows, n_cols, rows))
}

/// A lazily-loading catalog over the on-disk index.
///
/// The TOC (a few entries per matrix) lives in memory; matrix bodies are
/// read on demand. Per-matrix row directories are cached after first touch
/// so repeated `count_*_row` probes stay cheap.
pub struct DiskCatalog {
    file: Mutex<File>,
    dims: CubeDims,
    blob_base: u64,
    toc: [HashMap<u32, TocEntry>; 4],
    /// Cached row directories: (family, key) → row_id → (count, rel_offset).
    dir_cache: Mutex<HashMap<(u8, u32), RowDir>>,
}

impl std::fmt::Debug for DiskCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCatalog")
            .field("dims", &self.dims)
            .finish_non_exhaustive()
    }
}

impl DiskCatalog {
    /// Opens an index written by [`save_store`].
    pub fn open(path: &Path) -> Result<Self, BitMatError> {
        let mut f = File::open(path)?;
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(BitMatError::Corrupt("bad magic".into()));
        }
        let mut fixed = [0u8; 24];
        f.read_exact(&mut fixed)?;
        let dims = CubeDims {
            n_subjects: u32::from_le_bytes(fixed[0..4].try_into().unwrap()),
            n_predicates: u32::from_le_bytes(fixed[4..8].try_into().unwrap()),
            n_objects: u32::from_le_bytes(fixed[8..12].try_into().unwrap()),
            n_shared: u32::from_le_bytes(fixed[12..16].try_into().unwrap()),
            n_triples: u64::from_le_bytes(fixed[16..24].try_into().unwrap()),
        };
        let mut toc: [HashMap<u32, TocEntry>; 4] = Default::default();
        for fam in toc.iter_mut() {
            let mut nbuf = [0u8; 4];
            f.read_exact(&mut nbuf)?;
            let n = u32::from_le_bytes(nbuf) as usize;
            let mut buf = vec![0u8; 28 * n];
            f.read_exact(&mut buf)?;
            for i in 0..n {
                let at = 28 * i;
                let key = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                let offset = u64::from_le_bytes(buf[at + 4..at + 12].try_into().unwrap());
                let len = u64::from_le_bytes(buf[at + 12..at + 20].try_into().unwrap());
                let count = u64::from_le_bytes(buf[at + 20..at + 28].try_into().unwrap());
                fam.insert(key, TocEntry { offset, len, count });
            }
        }
        let blob_base = f.stream_position()?;
        Ok(DiskCatalog {
            file: Mutex::new(f),
            dims,
            blob_base,
            toc,
            dir_cache: Mutex::new(HashMap::new()),
        })
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, BitMatError> {
        let mut f = self.file.lock().expect("file lock poisoned");
        f.seek(SeekFrom::Start(self.blob_base + offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn load_matrix(&self, fam: u8, key: u32) -> Result<Option<BitMat>, BitMatError> {
        match self.toc[fam as usize].get(&key) {
            None => Ok(None),
            Some(e) => {
                let bytes = self.read_at(e.offset, e.len as usize)?;
                decode_matrix(&bytes).map(Some)
            }
        }
    }

    /// Reads (and caches) the row directory of a matrix.
    fn row_dir(&self, fam: u8, key: u32) -> Result<Option<RowDir>, BitMatError> {
        if let Some(dir) = self
            .dir_cache
            .lock()
            .expect("dir cache lock poisoned")
            .get(&(fam, key))
        {
            return Ok(Some(dir.clone()));
        }
        let Some(e) = self.toc[fam as usize].get(&key).copied() else {
            return Ok(None);
        };
        let head = self.read_at(e.offset, 20.min(e.len as usize))?;
        let n_present = u32::from_le_bytes(head[16..20].try_into().unwrap()) as usize;
        let dir_bytes = self.read_at(e.offset + 20, 12 * n_present)?;
        let mut dir = RowDir::with_capacity(n_present);
        for i in 0..n_present {
            let at = 12 * i;
            let id = u32::from_le_bytes(dir_bytes[at..at + 4].try_into().unwrap());
            let cnt = u32::from_le_bytes(dir_bytes[at + 4..at + 8].try_into().unwrap());
            let rel = u32::from_le_bytes(dir_bytes[at + 8..at + 12].try_into().unwrap());
            dir.insert(id, (cnt, rel));
        }
        self.dir_cache
            .lock()
            .expect("dir cache lock poisoned")
            .insert((fam, key), dir.clone());
        Ok(Some(dir))
    }

    fn load_row(&self, fam: u8, key: u32, row_id: u32) -> Result<Option<BitRow>, BitMatError> {
        let Some(dir) = self.row_dir(fam, key)? else {
            return Ok(None);
        };
        let Some(&(_, rel)) = dir.get(&row_id) else {
            return Ok(None);
        };
        let e = self.toc[fam as usize][&key];
        let n_present = dir.len();
        let payload_start = e.offset + 20 + 12 * n_present as u64;
        // Read from the row's offset to the end of the blob; decode stops at
        // the row boundary.
        let len = (e.offset + e.len - payload_start - rel as u64) as usize;
        let bytes = self.read_at(payload_start + rel as u64, len)?;
        let universe = match FAMILIES[fam as usize] {
            "S-O" => self.dims.n_objects,
            "O-S" => self.dims.n_subjects,
            "P-O" => self.dims.n_objects,
            _ => self.dims.n_subjects,
        };
        let (row, _) = BitRow::read_from(&bytes, universe)
            .ok_or_else(|| BitMatError::Corrupt("bad row payload".into()))?;
        Ok(Some(row))
    }

    fn count_row(&self, fam: u8, key: u32, row_id: u32) -> u64 {
        match self.row_dir(fam, key) {
            Ok(Some(dir)) => dir.get(&row_id).map_or(0, |&(c, _)| c as u64),
            _ => 0,
        }
    }
}

impl Catalog for DiskCatalog {
    fn dims(&self) -> CubeDims {
        self.dims
    }

    fn load_so(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(0, p)
    }

    fn load_os(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(1, p)
    }

    fn load_po(&self, s: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(2, s)
    }

    fn load_ps(&self, o: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(3, o)
    }

    fn load_po_row(&self, s: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        self.load_row(2, s, p)
    }

    fn load_ps_row(&self, o: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        self.load_row(3, o, p)
    }

    fn count_so(&self, p: u32) -> u64 {
        self.toc[0].get(&p).map_or(0, |e| e.count)
    }

    fn count_po(&self, s: u32) -> u64 {
        self.toc[2].get(&s).map_or(0, |e| e.count)
    }

    fn count_ps(&self, o: u32) -> u64 {
        self.toc[3].get(&o).map_or(0, |e| e.count)
    }

    fn count_po_row(&self, s: u32, p: u32) -> u64 {
        self.count_row(2, s, p)
    }

    fn count_ps_row(&self, o: u32, p: u32) -> u64 {
        self.count_row(3, o, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_rdf::{Graph, Term, Triple};

    fn sample_store() -> BitMatStore {
        let mut triples = Vec::new();
        for i in 0..40 {
            triples.push(Triple::new(
                Term::iri(format!("s{}", i % 7)),
                Term::iri(format!("p{}", i % 3)),
                Term::iri(format!("o{i}")),
            ));
            // A chain so S and O overlap.
            triples.push(Triple::new(
                Term::iri(format!("o{i}")),
                Term::iri("next"),
                Term::iri(format!("s{}", (i + 1) % 7)),
            ));
        }
        BitMatStore::build(&Graph::from_triples(triples).encode())
    }

    #[test]
    fn save_and_reload_matches_store() {
        let store = sample_store();
        let dir = std::env::temp_dir().join("lbr_bitmat_test_roundtrip.idx");
        let bytes = save_store(&store, &dir).unwrap();
        assert!(bytes > 0);
        let cat = DiskCatalog::open(&dir).unwrap();
        assert_eq!(cat.dims(), store.dims());
        let dims = store.dims();
        for p in 0..dims.n_predicates {
            assert_eq!(cat.count_so(p), store.count_so(p), "count_so({p})");
            match (cat.load_so(p).unwrap(), store.load_so(p).unwrap()) {
                (Some(a), Some(b)) => assert_eq!(a, b, "so({p})"),
                (None, None) => {}
                other => panic!("mismatch for so({p}): {other:?}"),
            }
            assert_eq!(cat.load_os(p).unwrap(), store.load_os(p).unwrap());
        }
        for s in 0..dims.n_subjects {
            assert_eq!(cat.count_po(s), store.count_po(s));
            assert_eq!(cat.load_po(s).unwrap(), store.load_po(s).unwrap());
            for p in 0..dims.n_predicates {
                assert_eq!(cat.count_po_row(s, p), store.count_po_row(s, p));
                assert_eq!(
                    cat.load_po_row(s, p).unwrap(),
                    store.load_po_row(s, p).unwrap()
                );
            }
        }
        for o in 0..dims.n_objects {
            assert_eq!(cat.count_ps(o), store.count_ps(o));
            assert_eq!(cat.load_ps(o).unwrap(), store.load_ps(o).unwrap());
        }
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn open_rejects_bad_magic() {
        let path = std::env::temp_dir().join("lbr_bitmat_test_badmagic.idx");
        std::fs::write(&path, b"NOTANIDX________").unwrap();
        assert!(matches!(
            DiskCatalog::open(&path),
            Err(BitMatError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_keys_are_none() {
        let store = sample_store();
        let path = std::env::temp_dir().join("lbr_bitmat_test_missing.idx");
        save_store(&store, &path).unwrap();
        let cat = DiskCatalog::open(&path).unwrap();
        assert!(cat.load_so(9999).unwrap().is_none());
        assert!(cat.load_po_row(0, 9999).unwrap().is_none());
        assert_eq!(cat.count_ps_row(9999, 0), 0);
        std::fs::remove_file(&path).ok();
    }
}
