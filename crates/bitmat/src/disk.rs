//! On-disk BitMat segment format (v2) and the mmap-backed [`DiskCatalog`].
//!
//! The paper keeps its `2|Vp| + |Vs| + |Vo|` BitMats on disk (20–41 GB) and
//! loads only the matrices a query's triple patterns need. We mirror that
//! with a single page-aligned segment file that is read **zero-copy**: the
//! whole file is `mmap`'d once and every integer array inside it is 4-byte
//! aligned, so row payloads can be reinterpreted as `&[u32]` and cursored
//! directly ([`MappedMatrix::cursor`], [`crate::kernel::RowCursor`])
//! without ever copying a row onto the heap.
//!
//! ```text
//! header page(s), zero-padded to a 4096-byte boundary:
//!   magic    "LBRBM002"
//!   version  u32 (= 2) | reserved u32 (= 0)
//!   blob_base u64           — absolute offset of the blob region (page-aligned)
//!   dims     n_subjects u32 | n_predicates u32 | n_objects u32 | n_shared u32
//!            | n_triples u64
//!   toc      4 families × [ n_mats u32 | (key u32, offset u64, len u64,
//!            count u64) × n_mats ]    — offsets relative to blob_base
//! blob region, each matrix blob aligned to 64 bytes:
//!   n_rows u32 | n_cols u32 | count u64 | n_present u32 | reserved u32
//!   row directory: (row_id u32, row_count u32, rel_words u32) × n_present,
//!                  ascending by row_id; rel_words is a word offset into the
//!                  payload
//!   row payloads:  per row [tag u32 | n u32 | n or 2n u32s]
//!                  (BitRow::write_words_to — all fields full words)
//! ```
//!
//! All lengths and offsets are validated at open / first touch: a
//! truncated or corrupt file yields [`BitMatError::Corrupt`], never UB.
//! The v1 format (`LBRBM001`, byte-packed rows behind a seeking file
//! handle) is superseded; v1 files are rejected with a clear error.
//!
//! The row directory allows `load_*_row` (the paper's single-row loads for
//! two-fixed-position patterns) and `count_*_row` (selectivity metadata) to
//! binary-search a mapped directory plus touch one row, never the whole
//! matrix — and since the mapping is shared and immutable, the catalog
//! needs no locks at all.

use crate::catalog::{Catalog, CubeDims};
use crate::error::BitMatError;
use crate::kernel::RowCursor;
use crate::matrix::BitMat;
use crate::mmap::{words_of, Mmap};
use crate::row::BitRow;
use crate::store::BitMatStore;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 8] = b"LBRBM002";
const MAGIC_V1: &[u8; 8] = b"LBRBM001";
const VERSION: u32 = 2;
/// Page size the header region is padded to; blob region starts here-aligned.
const PAGE: usize = 4096;
/// Alignment of each matrix blob within the blob region (cache line).
const BLOB_ALIGN: usize = 64;
/// Fixed header bytes before the TOC: magic(8) + version(4) + reserved(4)
/// + blob_base(8) + dims(16 + 8).
const FIXED_HEADER: usize = 48;
/// Matrix blob header bytes before the row directory.
const MAT_HEADER: usize = 24;
/// Bytes per row-directory entry.
const DIR_ENTRY: usize = 12;

/// Family tags used in the TOC, in serialization order.
const FAMILIES: [&str; 4] = ["S-O", "O-S", "P-O", "P-S"];

#[derive(Debug, Clone, Copy)]
struct TocEntry {
    offset: u64,
    len: u64,
    count: u64,
}

fn corrupt(m: impl Into<String>) -> BitMatError {
    BitMatError::Corrupt(m.into())
}

/// Serializes a store to `path` in the v2 segment format, returning the
/// number of bytes written.
pub fn save_store(store: &BitMatStore, path: &Path) -> Result<u64, BitMatError> {
    let dims = store.dims();
    let mut toc: [Vec<(u32, u64, u64, u64)>; 4] = Default::default();
    let mut blobs: Vec<u8> = Vec::new();
    for (fam, key, mat) in store.iter_families() {
        if mat.is_empty() {
            continue;
        }
        // Align each blob so every word inside it stays 4-byte aligned
        // relative to the page-aligned blob base.
        let pad = blobs.len().next_multiple_of(BLOB_ALIGN) - blobs.len();
        blobs.extend(std::iter::repeat_n(0u8, pad));
        let offset = blobs.len() as u64;
        encode_matrix(mat, &mut blobs);
        let len = blobs.len() as u64 - offset;
        toc[fam as usize].push((key, offset, len, mat.triple_count()));
    }
    let mut header: Vec<u8> = Vec::new();
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    let blob_base_at = header.len();
    header.extend_from_slice(&0u64.to_le_bytes()); // blob_base, patched below
    header.extend_from_slice(&dims.n_subjects.to_le_bytes());
    header.extend_from_slice(&dims.n_predicates.to_le_bytes());
    header.extend_from_slice(&dims.n_objects.to_le_bytes());
    header.extend_from_slice(&dims.n_shared.to_le_bytes());
    header.extend_from_slice(&dims.n_triples.to_le_bytes());
    for entries in &toc {
        header.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for &(key, offset, len, count) in entries {
            header.extend_from_slice(&key.to_le_bytes());
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&len.to_le_bytes());
            header.extend_from_slice(&count.to_le_bytes());
        }
    }
    let blob_base = header.len().next_multiple_of(PAGE);
    header[blob_base_at..blob_base_at + 8].copy_from_slice(&(blob_base as u64).to_le_bytes());
    header.resize(blob_base, 0);
    let mut f = File::create(path)?;
    f.write_all(&header)?;
    f.write_all(&blobs)?;
    f.flush()?;
    Ok(header.len() as u64 + blobs.len() as u64)
}

fn encode_matrix(mat: &BitMat, out: &mut Vec<u8>) {
    out.extend_from_slice(&mat.n_rows().to_le_bytes());
    out.extend_from_slice(&mat.n_cols().to_le_bytes());
    out.extend_from_slice(&mat.triple_count().to_le_bytes());
    out.extend_from_slice(&(mat.rows().len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    // Two passes: payloads first into a scratch buffer to learn offsets.
    let mut payload: Vec<u8> = Vec::new();
    let mut dir: Vec<(u32, u32, u32)> = Vec::with_capacity(mat.rows().len());
    for (id, row) in mat.rows() {
        let rel_words = (payload.len() / 4) as u32;
        row.write_words_to(&mut payload);
        dir.push((*id, row.count_ones(), rel_words));
    }
    for (id, cnt, rel) in dir {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&cnt.to_le_bytes());
        out.extend_from_slice(&rel.to_le_bytes());
    }
    out.extend_from_slice(&payload);
}

/// A zero-copy view of one matrix inside a mapped segment.
///
/// The directory and payload are `&[u32]` slices borrowed straight from
/// the mapping; [`MappedMatrix::cursor`] hands out a
/// [`RowCursor`] that walks the mapped words in place.
#[derive(Debug, Clone, Copy)]
pub struct MappedMatrix<'a> {
    n_rows: u32,
    n_cols: u32,
    count: u64,
    /// `(row_id, row_count, rel_words)` triplets, flattened.
    dir: &'a [u32],
    payload: &'a [u32],
}

impl<'a> MappedMatrix<'a> {
    fn from_blob(bytes: &'a [u8]) -> Result<MappedMatrix<'a>, BitMatError> {
        if bytes.len() < MAT_HEADER || !bytes.len().is_multiple_of(4) {
            return Err(corrupt("matrix blob too short or misaligned"));
        }
        let u32_at =
            |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"));
        let n_rows = u32_at(0);
        let n_cols = u32_at(4);
        let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let n_present = u32_at(16) as usize;
        let dir_end = MAT_HEADER
            .checked_add(
                n_present
                    .checked_mul(DIR_ENTRY)
                    .ok_or_else(|| corrupt("dir size"))?,
            )
            .ok_or_else(|| corrupt("dir size"))?;
        if dir_end > bytes.len() {
            return Err(corrupt("row directory out of bounds"));
        }
        let dir = words_of(&bytes[MAT_HEADER..dir_end])
            .ok_or_else(|| corrupt("misaligned row directory"))?;
        let payload =
            words_of(&bytes[dir_end..]).ok_or_else(|| corrupt("misaligned row payload"))?;
        // Directory row ids must ascend (binary-searched) and stay in range.
        for k in 0..n_present {
            let id = dir[3 * k];
            if id >= n_rows || (k > 0 && dir[3 * (k - 1)] >= id) {
                return Err(corrupt("row directory not ascending"));
            }
        }
        Ok(MappedMatrix {
            n_rows,
            n_cols,
            count,
            dir,
            payload,
        })
    }

    /// Number of rows in the (conceptual, dense) row dimension.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns (the universe of every row).
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of set bits (triples held by this matrix).
    pub fn triple_count(&self) -> u64 {
        self.count
    }

    /// Number of non-empty rows present.
    pub fn n_present(&self) -> usize {
        self.dir.len() / 3
    }

    fn dir_slot(&self, row_id: u32) -> Option<usize> {
        let n = self.n_present();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.dir[3 * mid].cmp(&row_id) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Set-bit count of one row (0 when absent) — directory only.
    pub fn row_count(&self, row_id: u32) -> u32 {
        self.dir_slot(row_id).map_or(0, |k| self.dir[3 * k + 1])
    }

    /// The `(tag, body)` words of one row's payload: tag 0 = ascending
    /// sparse positions, tag 1 = flattened `[start, end)` run pairs.
    /// Returns an error (not UB) when the stored offsets are corrupt.
    pub fn row_words(&self, row_id: u32) -> Result<Option<(u32, &'a [u32])>, BitMatError> {
        let Some(k) = self.dir_slot(row_id) else {
            return Ok(None);
        };
        let rel = self.dir[3 * k + 2] as usize;
        let tag = *self
            .payload
            .get(rel)
            .ok_or_else(|| corrupt("row offset out of bounds"))?;
        let n = *self
            .payload
            .get(rel + 1)
            .ok_or_else(|| corrupt("row length out of bounds"))? as usize;
        let body_len = match tag {
            0 => n,
            1 => n
                .checked_mul(2)
                .ok_or_else(|| corrupt("run count overflow"))?,
            _ => return Err(corrupt("unknown row tag")),
        };
        let body = self
            .payload
            .get(rel + 2..rel + 2 + body_len)
            .ok_or_else(|| corrupt("row body out of bounds"))?;
        Ok(Some((tag, body)))
    }

    /// A zero-copy [`RowCursor`] over one row's mapped words (`None` when
    /// the row is absent). The cursor seeks/intersects directly on the
    /// mapped pages — nothing is decoded onto the heap.
    pub fn cursor(&self, row_id: u32) -> Result<Option<RowCursor<'a>>, BitMatError> {
        Ok(self.row_words(row_id)?.map(|(tag, body)| match tag {
            0 => RowCursor::from_mapped_sparse(body),
            _ => RowCursor::from_mapped_runs(body),
        }))
    }

    /// Decodes one row into an owned [`BitRow`] (`None` when absent).
    pub fn row(&self, row_id: u32) -> Result<Option<BitRow>, BitMatError> {
        let Some(k) = self.dir_slot(row_id) else {
            return Ok(None);
        };
        let rel = self.dir[3 * k + 2] as usize;
        let words = self
            .payload
            .get(rel..)
            .ok_or_else(|| corrupt("row offset out of bounds"))?;
        let (row, _) = BitRow::read_from_words(words, self.n_cols)
            .ok_or_else(|| corrupt("bad row payload"))?;
        Ok(Some(row))
    }

    /// Decodes the whole matrix into an owned [`BitMat`] (for callers that
    /// mutate rows destructively, e.g. the prune passes).
    pub fn to_bitmat(&self) -> Result<BitMat, BitMatError> {
        let n = self.n_present();
        let mut rows: Vec<(u32, BitRow)> = Vec::with_capacity(n);
        for k in 0..n {
            let id = self.dir[3 * k];
            let rel = self.dir[3 * k + 2] as usize;
            let words = self
                .payload
                .get(rel..)
                .ok_or_else(|| corrupt("row offset out of bounds"))?;
            let (row, _) = BitRow::read_from_words(words, self.n_cols)
                .ok_or_else(|| corrupt("bad row payload"))?;
            rows.push((id, row));
        }
        Ok(BitMat::from_rows(self.n_rows, self.n_cols, rows))
    }
}

/// An mmap-backed, lock-free catalog over the on-disk segment.
///
/// The TOC (a few entries per matrix) lives in memory; matrix bodies stay
/// on their mapped pages and are either viewed zero-copy
/// ([`DiskCatalog::mapped_so`] and friends) or decoded on demand for the
/// owned [`Catalog`] loads. The kernel page cache does the tiering.
pub struct DiskCatalog {
    map: Mmap,
    dims: CubeDims,
    blob_base: usize,
    toc: [HashMap<u32, TocEntry>; 4],
}

impl std::fmt::Debug for DiskCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCatalog")
            .field("dims", &self.dims)
            .field("mapped_bytes", &self.map.len())
            .finish_non_exhaustive()
    }
}

impl DiskCatalog {
    /// Opens (mmaps) a segment written by [`save_store`]. Every header
    /// field and TOC entry is bounds-validated here; per-matrix internals
    /// are validated on first touch. Corrupt input errors — it never
    /// causes an out-of-bounds access.
    pub fn open(path: &Path) -> Result<Self, BitMatError> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        let bytes = map.as_slice();
        if bytes.len() < FIXED_HEADER {
            return Err(corrupt("file shorter than header"));
        }
        if &bytes[0..8] != MAGIC {
            if &bytes[0..8] == MAGIC_V1 {
                return Err(corrupt(
                    "v1 index (LBRBM001) is no longer supported; re-save the store",
                ));
            }
            return Err(corrupt("bad magic"));
        }
        let u32_at = |at: usize| -> Result<u32, BitMatError> {
            Ok(u32::from_le_bytes(
                bytes
                    .get(at..at + 4)
                    .ok_or_else(|| corrupt("truncated header"))?
                    .try_into()
                    .expect("4-byte slice"),
            ))
        };
        let u64_at = |at: usize| -> Result<u64, BitMatError> {
            Ok(u64::from_le_bytes(
                bytes
                    .get(at..at + 8)
                    .ok_or_else(|| corrupt("truncated header"))?
                    .try_into()
                    .expect("8-byte slice"),
            ))
        };
        let version = u32_at(8)?;
        if version != VERSION {
            return Err(corrupt(format!("unsupported segment version {version}")));
        }
        let blob_base = u64_at(16)? as usize;
        if !blob_base.is_multiple_of(PAGE) || blob_base > bytes.len() || blob_base < FIXED_HEADER {
            return Err(corrupt("bad blob base"));
        }
        let dims = CubeDims {
            n_subjects: u32_at(24)?,
            n_predicates: u32_at(28)?,
            n_objects: u32_at(32)?,
            n_shared: u32_at(36)?,
            n_triples: u64_at(40)?,
        };
        let blob_len = bytes.len() - blob_base;
        let mut toc: [HashMap<u32, TocEntry>; 4] = Default::default();
        let mut at = FIXED_HEADER;
        for fam in toc.iter_mut() {
            let n = u32_at(at)? as usize;
            at += 4;
            for _ in 0..n {
                let key = u32_at(at)?;
                let offset = u64_at(at + 4)?;
                let len = u64_at(at + 12)?;
                let count = u64_at(at + 20)?;
                at += 28;
                let end = offset
                    .checked_add(len)
                    .ok_or_else(|| corrupt("TOC overflow"))?;
                if end > blob_len as u64 || offset % 4 != 0 {
                    return Err(corrupt("TOC entry out of bounds"));
                }
                fam.insert(key, TocEntry { offset, len, count });
            }
            if at > blob_base {
                return Err(corrupt("TOC extends past blob base"));
            }
        }
        Ok(DiskCatalog {
            map,
            dims,
            blob_base,
            toc,
        })
    }

    /// Total size of the mapped segment in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    fn mapped(&self, fam: u8, key: u32) -> Result<Option<MappedMatrix<'_>>, BitMatError> {
        let Some(e) = self.toc[fam as usize].get(&key) else {
            return Ok(None);
        };
        let start = self.blob_base + e.offset as usize;
        let bytes = self
            .map
            .as_slice()
            .get(start..start + e.len as usize)
            .ok_or_else(|| corrupt("blob out of bounds"))?;
        MappedMatrix::from_blob(bytes).map(Some)
    }

    /// Zero-copy view of the S-O matrix of predicate `p`.
    pub fn mapped_so(&self, p: u32) -> Result<Option<MappedMatrix<'_>>, BitMatError> {
        self.mapped(0, p)
    }

    /// Zero-copy view of the O-S matrix of predicate `p`.
    pub fn mapped_os(&self, p: u32) -> Result<Option<MappedMatrix<'_>>, BitMatError> {
        self.mapped(1, p)
    }

    /// Zero-copy view of the P-O matrix of subject `s`.
    pub fn mapped_po(&self, s: u32) -> Result<Option<MappedMatrix<'_>>, BitMatError> {
        self.mapped(2, s)
    }

    /// Zero-copy view of the P-S matrix of object `o`.
    pub fn mapped_ps(&self, o: u32) -> Result<Option<MappedMatrix<'_>>, BitMatError> {
        self.mapped(3, o)
    }

    fn load_matrix(&self, fam: u8, key: u32) -> Result<Option<BitMat>, BitMatError> {
        match self.mapped(fam, key)? {
            None => Ok(None),
            Some(m) => m.to_bitmat().map(Some),
        }
    }

    fn load_row(&self, fam: u8, key: u32, row_id: u32) -> Result<Option<BitRow>, BitMatError> {
        match self.mapped(fam, key)? {
            None => Ok(None),
            Some(m) => m.row(row_id),
        }
    }

    fn count_row(&self, fam: u8, key: u32, row_id: u32) -> u64 {
        match self.mapped(fam, key) {
            Ok(Some(m)) => m.row_count(row_id) as u64,
            _ => 0,
        }
    }
}

impl Catalog for DiskCatalog {
    fn dims(&self) -> CubeDims {
        self.dims
    }

    fn load_so(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(0, p)
    }

    fn load_os(&self, p: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(1, p)
    }

    fn load_po(&self, s: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(2, s)
    }

    fn load_ps(&self, o: u32) -> Result<Option<BitMat>, BitMatError> {
        self.load_matrix(3, o)
    }

    fn load_po_row(&self, s: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        self.load_row(2, s, p)
    }

    fn load_ps_row(&self, o: u32, p: u32) -> Result<Option<BitRow>, BitMatError> {
        self.load_row(3, o, p)
    }

    fn count_so(&self, p: u32) -> u64 {
        self.toc[0].get(&p).map_or(0, |e| e.count)
    }

    fn count_po(&self, s: u32) -> u64 {
        self.toc[2].get(&s).map_or(0, |e| e.count)
    }

    fn count_ps(&self, o: u32) -> u64 {
        self.toc[3].get(&o).map_or(0, |e| e.count)
    }

    fn count_po_row(&self, s: u32, p: u32) -> u64 {
        self.count_row(2, s, p)
    }

    fn count_ps_row(&self, o: u32, p: u32) -> u64 {
        self.count_row(3, o, p)
    }
}

// Keep the family-tag table referenced so the serialization order stays
// documented next to the format. (Used in error paths and tests.)
#[allow(dead_code)]
fn family_name(fam: u8) -> &'static str {
    FAMILIES[fam as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_rdf::{Graph, Term, Triple};

    fn sample_store() -> BitMatStore {
        let mut triples = Vec::new();
        for i in 0..40 {
            triples.push(Triple::new(
                Term::iri(format!("s{}", i % 7)),
                Term::iri(format!("p{}", i % 3)),
                Term::iri(format!("o{i}")),
            ));
            // A chain so S and O overlap.
            triples.push(Triple::new(
                Term::iri(format!("o{i}")),
                Term::iri("next"),
                Term::iri(format!("s{}", (i + 1) % 7)),
            ));
        }
        BitMatStore::build(&Graph::from_triples(triples).encode())
    }

    #[test]
    fn save_and_reload_matches_store() {
        let store = sample_store();
        let dir = std::env::temp_dir().join("lbr_bitmat_test_roundtrip.idx");
        let bytes = save_store(&store, &dir).unwrap();
        assert!(bytes > 0);
        let cat = DiskCatalog::open(&dir).unwrap();
        assert_eq!(cat.dims(), store.dims());
        assert_eq!(cat.mapped_bytes(), bytes);
        let dims = store.dims();
        for p in 0..dims.n_predicates {
            assert_eq!(cat.count_so(p), store.count_so(p), "count_so({p})");
            match (cat.load_so(p).unwrap(), store.load_so(p).unwrap()) {
                (Some(a), Some(b)) => assert_eq!(a, b, "so({p})"),
                (None, None) => {}
                other => panic!("mismatch for so({p}): {other:?}"),
            }
            assert_eq!(cat.load_os(p).unwrap(), store.load_os(p).unwrap());
        }
        for s in 0..dims.n_subjects {
            assert_eq!(cat.count_po(s), store.count_po(s));
            assert_eq!(cat.load_po(s).unwrap(), store.load_po(s).unwrap());
            for p in 0..dims.n_predicates {
                assert_eq!(cat.count_po_row(s, p), store.count_po_row(s, p));
                assert_eq!(
                    cat.load_po_row(s, p).unwrap(),
                    store.load_po_row(s, p).unwrap()
                );
            }
        }
        for o in 0..dims.n_objects {
            assert_eq!(cat.count_ps(o), store.count_ps(o));
            assert_eq!(cat.load_ps(o).unwrap(), store.load_ps(o).unwrap());
        }
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn mapped_cursors_match_owned_rows() {
        let store = sample_store();
        let path = std::env::temp_dir().join("lbr_bitmat_test_cursors.idx");
        save_store(&store, &path).unwrap();
        let cat = DiskCatalog::open(&path).unwrap();
        let dims = store.dims();
        for p in 0..dims.n_predicates {
            let Some(mapped) = cat.mapped_so(p).unwrap() else {
                continue;
            };
            let owned = store.load_so(p).unwrap().unwrap();
            assert_eq!(mapped.triple_count(), owned.triple_count());
            for (id, row) in owned.rows() {
                // Zero-copy cursor walks the same positions.
                let mut cur = mapped.cursor(*id).unwrap().unwrap();
                let mut got = Vec::new();
                while let Some(pos) = cur.peek() {
                    got.push(pos);
                    cur.advance();
                }
                assert_eq!(got, row.iter_ones().collect::<Vec<_>>(), "so({p}) row {id}");
                assert_eq!(mapped.row_count(*id), row.count_ones());
            }
            assert!(mapped.cursor(u32::MAX).unwrap().is_none());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_bad_magic_and_v1() {
        let path = std::env::temp_dir().join("lbr_bitmat_test_badmagic.idx");
        std::fs::write(&path, b"NOTANIDX________________________________________").unwrap();
        assert!(matches!(
            DiskCatalog::open(&path),
            Err(BitMatError::Corrupt(_))
        ));
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &v1).unwrap();
        match DiskCatalog::open(&path) {
            Err(BitMatError::Corrupt(m)) => assert!(m.contains("v1"), "got: {m}"),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_files_error_not_ub() {
        let store = sample_store();
        let path = std::env::temp_dir().join("lbr_bitmat_test_trunc.idx");
        save_store(&store, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncations at a spread of prefix lengths: open either fails or
        // every subsequent load fails cleanly.
        for frac in [0, 7, 47, 100, 4095, 4096, 4100] {
            let n = frac.min(full.len());
            std::fs::write(&path, &full[..n]).unwrap();
            if let Ok(cat) = DiskCatalog::open(&path) {
                let dims = cat.dims();
                for p in 0..dims.n_predicates {
                    let _ = cat.load_so(p);
                    let _ = cat.load_os(p);
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_keys_are_none() {
        let store = sample_store();
        let path = std::env::temp_dir().join("lbr_bitmat_test_missing.idx");
        save_store(&store, &path).unwrap();
        let cat = DiskCatalog::open(&path).unwrap();
        assert!(cat.load_so(9999).unwrap().is_none());
        assert!(cat.load_po_row(0, 9999).unwrap().is_none());
        assert_eq!(cat.count_ps_row(9999, 0), 0);
        assert_eq!(family_name(0), "S-O");
        std::fs::remove_file(&path).ok();
    }
}
