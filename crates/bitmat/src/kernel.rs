//! Run-aware compressed-set kernels: set algebra that works **directly on
//! the hybrid Runs/Sparse representations** — a row is never expanded
//! into raw bits, and nothing densifies on the way through. Dispatch
//! follows the operand representations:
//!
//! * **row × dense mask** ([`BitRow::and_mask_in_place`]) — word
//!   streaming: run windows AND the mask's words in place, sparse
//!   positions probe single bits. *This is the engine's semi-join
//!   workhorse*: `fold` ORs compressed rows into a dense β mask, the
//!   masks AND word-wise, and `unfold` pushes the result back through
//!   this kernel row by row.
//! * **run × run** — interval clipping: walk both run lists once,
//!   emitting the overlap of the current pair (`O(r₁ + r₂)`);
//! * **run × sparse** — probing: merge-walk the sparse positions against
//!   the run list, keeping positions covered by a run (`O(s + r)`);
//! * **sparse × sparse** — galloping: for each position of the smaller
//!   list, exponential-then-binary search the larger one (`O(s₁ ·
//!   log(s₂/s₁))` — the Atreides-family intersection shape).
//!
//! The row×row forms ([`BitRow::and_row`], [`BitRow::and_row_into`]) and
//! the k-way leapfrog ([`intersect_into`] over seekable [`RowCursor`]s)
//! are the general row-level layer: covered by the dense-oracle property
//! suite and the `kernelbench` CI gate, available to any consumer that
//! intersects individual compressed rows without a dense accumulator.
//!
//! The in-place entry points write into caller-owned buffers: a
//! [`SetScratch`] circulates position/run buffers between the kernel and
//! the destination rows, so steady-state pruning performs **no heap
//! allocation** — buffers grow to a high-water mark on the first pass and
//! are reused afterwards ([`SetScratch::reuses`] / [`SetScratch::grows`]
//! make that observable).
//!
//! Output representations follow the same hybrid rule as
//! [`BitRow::from_sorted_positions`] (sparse iff `count < 2·n_runs`), so
//! kernel results are bit-for-bit identical to the allocating paths.

use crate::bitvec::BitVec;
use crate::row::{runs_of_into, BitRow, Repr};

/// Caller-owned scratch buffers for the in-place kernels.
///
/// One `SetScratch` serves any number of kernel calls; buffers are cleared
/// (capacity kept) on each call. The spare buffers recycle a destination
/// row's old vector whenever a result switches the row between the Runs
/// and Sparse representations, so representation flips do not leak the
/// replaced allocation.
#[derive(Debug, Default)]
pub struct SetScratch {
    /// Kernel result as positions.
    pos: Vec<u32>,
    /// Kernel result as runs.
    runs: Vec<(u32, u32)>,
    /// Spare position buffer recycled through representation switches.
    spare_pos: Vec<u32>,
    /// Spare run buffer recycled through representation switches.
    spare_runs: Vec<(u32, u32)>,
    /// Kernel calls served entirely from existing capacity.
    reuses: u64,
    /// Kernel calls that had to grow a buffer (allocated).
    grows: u64,
    /// Set by the store step when writing the result grew a destination
    /// or spare vector (cleared by [`SetScratch::account`]).
    grew_in_store: bool,
}

impl SetScratch {
    /// Number of kernel calls served without growing any scratch buffer —
    /// the steady-state counter surfaced as `scratch_reuses` in query
    /// stats. (Tracks this scratch's four buffers; growth of a
    /// *destination row's* own vector inside `extend_from_slice` is the
    /// destination's capacity, not the pool's, and is not counted — the
    /// bench counting allocator is the ground truth for total allocation.)
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Number of kernel calls that grew a scratch buffer (allocated).
    /// After the first pass over a workload this should stop increasing.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Compute-buffer capacities, for growth accounting (the spare
    /// buffers swap vectors on representation flips without allocating,
    /// so their growth is flagged at the extend sites instead).
    fn caps(&self) -> (usize, usize) {
        (self.pos.capacity(), self.runs.capacity())
    }

    /// Records whether this call allocated: a compute buffer grew since
    /// `before`, or a store step flagged growth of a destination/spare
    /// vector.
    fn account(&mut self, before: (usize, usize)) {
        if self.caps() != before || self.grew_in_store {
            self.grows += 1;
        } else {
            self.reuses += 1;
        }
        self.grew_in_store = false;
    }
}

/// How a kernel left its result in the scratch.
enum Computed {
    /// Result is `scratch.pos`.
    Pos,
    /// Result is `scratch.runs`.
    Runs,
}

// lbr-lint: no_alloc — steady-state row kernels: every operation below
// reuses caller-owned scratch; the dynamic alloc_check gate measures the
// same property at runtime.
impl BitRow {
    /// `self &= mask`, in place, reusing `scratch` buffers — the
    /// zero-allocation form of [`BitRow::and_mask`].
    ///
    /// The mask may be shorter or longer than the row's universe: bits
    /// beyond `mask.len()` read as zero (exactly the semantics of masking
    /// with a zero-padded/truncated copy), which lets fold/unfold masks
    /// live in a shared-prefix binding space without a resizing copy.
    pub fn and_mask_in_place(&mut self, mask: &BitVec, scratch: &mut SetScratch) {
        let caps = scratch.caps();
        and_mask_compute(self, mask, scratch);
        finish_into(scratch, Computed::Pos, self);
        scratch.account(caps);
    }

    /// `self & other` over the compressed representations (run×run
    /// clipping, run×sparse probing, sparse×sparse galloping), allocating
    /// the result row.
    ///
    /// # Panics
    /// Panics (debug) if the universes differ.
    pub fn and_row(&self, other: &BitRow) -> BitRow {
        let mut out = BitRow::empty(self.universe);
        let mut scratch = SetScratch::default();
        self.and_row_into(other, &mut out, &mut scratch);
        out
    }

    /// `*dst = self & other`, reusing `dst`'s and `scratch`'s buffers —
    /// the zero-allocation form of [`BitRow::and_row`]. `dst` may alias
    /// neither operand.
    pub fn and_row_into(&self, other: &BitRow, dst: &mut BitRow, scratch: &mut SetScratch) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        let caps = scratch.caps();
        let computed = match (&self.repr, &other.repr) {
            (Repr::Runs(a), Repr::Runs(b)) => {
                intersect_runs_runs(a, b, &mut scratch.runs);
                Computed::Runs
            }
            (Repr::Runs(r), Repr::Sparse(s)) | (Repr::Sparse(s), Repr::Runs(r)) => {
                probe_sparse_runs(s, r, &mut scratch.pos);
                Computed::Pos
            }
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                gallop_sparse_sparse(a, b, &mut scratch.pos);
                Computed::Pos
            }
        };
        dst.universe = self.universe;
        finish_into(scratch, computed, dst);
        scratch.account(caps);
    }
}

/// `self & mask` into `scratch.pos` (clipped to `mask.len()`).
fn and_mask_compute(row: &BitRow, mask: &BitVec, scratch: &mut SetScratch) {
    scratch.pos.clear();
    let positions = &mut scratch.pos;
    match &row.repr {
        Repr::Sparse(ps) => {
            positions.extend(ps.iter().copied().filter(|&p| mask.get(p)));
        }
        Repr::Runs(rs) => {
            let words = mask.words();
            for &(s, e) in rs {
                let e = e.min(mask.len());
                if s >= e {
                    break;
                }
                let mut w_idx = (s / 64) as usize;
                let last = ((e - 1) / 64) as usize;
                while w_idx <= last {
                    let mut w = words[w_idx];
                    // Clip to the run window within this word.
                    let base = w_idx as u32 * 64;
                    if s > base {
                        w &= u64::MAX << (s - base);
                    }
                    if e < base + 64 {
                        w &= u64::MAX >> (base + 64 - e);
                    }
                    while w != 0 {
                        let b = w.trailing_zeros();
                        positions.push(base + b);
                        w &= w - 1;
                    }
                    w_idx += 1;
                }
            }
        }
    }
}

/// Interval clipping: intersection of two maximal run lists. The output is
/// again maximal (input runs are non-adjacent, so two emitted overlaps can
/// never touch).
fn intersect_runs_runs(a: &[(u32, u32)], b: &[(u32, u32)], out: &mut Vec<(u32, u32)>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if s < e {
            out.push((s, e));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Probing: sparse positions kept iff covered by a run (merge walk).
fn probe_sparse_runs(sparse: &[u32], runs: &[(u32, u32)], out: &mut Vec<u32>) {
    out.clear();
    let mut j = 0usize;
    for &p in sparse {
        while j < runs.len() && runs[j].1 <= p {
            j += 1;
        }
        if j == runs.len() {
            break;
        }
        if runs[j].0 <= p {
            out.push(p);
        }
    }
}

/// Galloping search: for each position of the smaller list, exponential +
/// binary search in the larger one.
fn gallop_sparse_sparse(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut lo = 0usize;
    for &v in small {
        lo += gallop_geq(&large[lo..], v);
        if lo >= large.len() {
            break;
        }
        if large[lo] == v {
            out.push(v);
            lo += 1;
        }
    }
}

/// Index of the first element `>= v` in ascending `a` (exponential probe,
/// then binary search within the bracketed window).
fn gallop_geq(a: &[u32], v: u32) -> usize {
    if a.first().is_none_or(|&x| x >= v) {
        return 0;
    }
    let mut hi = 1usize;
    while hi < a.len() && a[hi] < v {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(a.len());
    lo + a[lo..hi].partition_point(|&x| x < v)
}

/// Writes the scratch result into `dst` applying the hybrid rule (sparse
/// iff `count < 2·n_runs`, as in [`BitRow::from_sorted_positions`]),
/// reusing `dst`'s buffer when the representation kind is unchanged and
/// swapping with a spare buffer when it flips.
fn finish_into(scratch: &mut SetScratch, computed: Computed, dst: &mut BitRow) {
    let (count, n_runs) = match computed {
        Computed::Pos => (scratch.pos.len() as u32, count_runs(&scratch.pos)),
        Computed::Runs => (
            scratch.runs.iter().map(|&(s, e)| e - s).sum::<u32>(),
            scratch.runs.len(),
        ),
    };
    dst.count = count;
    if (count as usize) < 2 * n_runs {
        // Sparse wins.
        if let Computed::Runs = computed {
            // Expand the (few) runs to positions; count < 2·n_runs keeps
            // this cheap.
            scratch.pos.clear();
            for &(s, e) in &scratch.runs {
                scratch.pos.extend(s..e);
            }
        }
        store_sparse(scratch, dst);
    } else {
        // Runs win (including the canonical empty row).
        if let Computed::Pos = computed {
            let (pos, runs) = (&scratch.pos, &mut scratch.runs);
            runs_of_into(pos, runs);
        }
        store_runs(scratch, dst);
    }
}

/// Number of maximal runs in an ascending position list.
fn count_runs(positions: &[u32]) -> usize {
    let mut n = 0usize;
    let mut prev = u32::MAX;
    for &p in positions {
        if prev == u32::MAX || p != prev + 1 {
            n += 1;
        }
        prev = p;
    }
    n
}

fn store_sparse(scratch: &mut SetScratch, dst: &mut BitRow) {
    match &mut dst.repr {
        Repr::Sparse(v) => {
            let c0 = v.capacity();
            v.clear();
            v.extend_from_slice(&scratch.pos);
            scratch.grew_in_store |= v.capacity() != c0;
        }
        Repr::Runs(_) => {
            let mut v = std::mem::take(&mut scratch.spare_pos);
            let c0 = v.capacity();
            v.clear();
            v.extend_from_slice(&scratch.pos);
            scratch.grew_in_store |= v.capacity() != c0;
            if let Repr::Runs(old) = std::mem::replace(&mut dst.repr, Repr::Sparse(v)) {
                if old.capacity() > scratch.spare_runs.capacity() {
                    scratch.spare_runs = old;
                }
            }
        }
    }
}

fn store_runs(scratch: &mut SetScratch, dst: &mut BitRow) {
    match &mut dst.repr {
        Repr::Runs(v) => {
            let c0 = v.capacity();
            v.clear();
            v.extend_from_slice(&scratch.runs);
            scratch.grew_in_store |= v.capacity() != c0;
        }
        Repr::Sparse(_) => {
            let mut v = std::mem::take(&mut scratch.spare_runs);
            let c0 = v.capacity();
            v.clear();
            v.extend_from_slice(&scratch.runs);
            scratch.grew_in_store |= v.capacity() != c0;
            if let Repr::Sparse(old) = std::mem::replace(&mut dst.repr, Repr::Runs(v)) {
                if old.capacity() > scratch.spare_pos.capacity() {
                    scratch.spare_pos = old;
                }
            }
        }
    }
}

/// A seekable cursor over one compressed row — the building block of the
/// k-way leapfrog intersection (and of any merge-style consumer that wants
/// to walk a row without materializing its positions).
pub struct RowCursor<'a> {
    repr: CursorRepr<'a>,
}

enum CursorRepr<'a> {
    Sparse {
        ps: &'a [u32],
        i: usize,
    },
    Runs {
        rs: &'a [(u32, u32)],
        i: usize,
        pos: u32,
    },
    /// Runs over a flat word slice (`[s0, e0, s1, e1, …]`) — the zero-copy
    /// form used when cursoring directly over an mmap'd segment page,
    /// where `(u32, u32)` tuple layout cannot be assumed.
    MappedRuns {
        words: &'a [u32],
        i: usize,
        pos: u32,
    },
}

impl<'a> RowCursor<'a> {
    /// A cursor positioned at the row's first set bit.
    pub fn new(row: &'a BitRow) -> RowCursor<'a> {
        RowCursor {
            repr: match &row.repr {
                Repr::Sparse(ps) => CursorRepr::Sparse { ps, i: 0 },
                Repr::Runs(rs) => CursorRepr::Runs {
                    rs,
                    i: 0,
                    pos: rs.first().map_or(0, |&(s, _)| s),
                },
            },
        }
    }

    /// A cursor over ascending set-bit positions borrowed from a mapped
    /// segment (the v2 sparse row payload, sans tag/len header).
    pub fn from_mapped_sparse(ps: &'a [u32]) -> RowCursor<'a> {
        RowCursor {
            repr: CursorRepr::Sparse { ps, i: 0 },
        }
    }

    /// A cursor over flattened `[start, end)` run pairs borrowed from a
    /// mapped segment (the v2 runs row payload, sans tag/len header).
    /// `words.len()` must be even.
    pub fn from_mapped_runs(words: &'a [u32]) -> RowCursor<'a> {
        debug_assert!(
            words.len().is_multiple_of(2),
            "flattened runs come in pairs"
        );
        RowCursor {
            repr: CursorRepr::MappedRuns {
                words,
                i: 0,
                pos: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// The position the cursor currently points at (`None` = exhausted).
    pub fn peek(&self) -> Option<u32> {
        match &self.repr {
            CursorRepr::Sparse { ps, i } => ps.get(*i).copied(),
            CursorRepr::Runs { rs, i, pos } => (*i < rs.len()).then_some(*pos),
            CursorRepr::MappedRuns { words, i, pos } => (2 * *i < words.len()).then_some(*pos),
        }
    }

    /// Advances past the current position (no-op when exhausted).
    pub fn advance(&mut self) {
        match &mut self.repr {
            CursorRepr::Sparse { i, .. } => *i += 1,
            CursorRepr::Runs { rs, i, pos } => {
                if *i >= rs.len() {
                    return;
                }
                *pos += 1;
                if *pos >= rs[*i].1 {
                    *i += 1;
                    if *i < rs.len() {
                        *pos = rs[*i].0;
                    }
                }
            }
            CursorRepr::MappedRuns { words, i, pos } => {
                let n = words.len() / 2;
                if *i >= n {
                    return;
                }
                *pos += 1;
                if *pos >= words[2 * *i + 1] {
                    *i += 1;
                    if *i < n {
                        *pos = words[2 * *i];
                    }
                }
            }
        }
    }

    /// Seeks to the first set bit `>= bound` (galloping), returning it.
    pub fn seek(&mut self, bound: u32) -> Option<u32> {
        match &mut self.repr {
            CursorRepr::Sparse { ps, i } => {
                *i += gallop_geq(&ps[*i..], bound);
                ps.get(*i).copied()
            }
            CursorRepr::Runs { rs, i, pos } => {
                if *i < rs.len() && *pos >= bound {
                    return Some(*pos);
                }
                // First run whose end is past the bound (ends ascend).
                *i += rs[*i..].partition_point(|&(_, e)| e <= bound);
                if *i >= rs.len() {
                    return None;
                }
                *pos = bound.max(rs[*i].0);
                Some(*pos)
            }
            CursorRepr::MappedRuns { words, i, pos } => {
                let n = words.len() / 2;
                if *i < n && *pos >= bound {
                    return Some(*pos);
                }
                // First run whose end is past the bound, over pair k's end
                // word at index 2k+1 (ends ascend).
                let mut lo = *i;
                let mut hi = n;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if words[2 * mid + 1] <= bound {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                *i = lo;
                if *i >= n {
                    return None;
                }
                *pos = bound.max(words[2 * *i]);
                Some(*pos)
            }
        }
    }
}
// lbr-lint: end

/// k-way intersection of compressed rows into a caller-owned, cleared
/// position buffer — leapfrog join over [`RowCursor`]s: repeatedly seek
/// every cursor to the current maximum until all agree.
///
/// `rows` must share one universe; an empty `rows` slice yields an empty
/// result.
pub fn intersect_into(rows: &[&BitRow], out: &mut Vec<u32>) {
    out.clear();
    let Some((first, rest)) = rows.split_first() else {
        return;
    };
    debug_assert!(rest.iter().all(|r| r.universe == first.universe));
    if rows.iter().any(|r| r.is_empty()) {
        return;
    }
    let mut cursors: Vec<RowCursor> = rows.iter().map(|r| RowCursor::new(r)).collect();
    intersect_cursors_into(&mut cursors, out);
}

/// The leapfrog core of [`intersect_into`], over caller-built cursors —
/// including zero-copy cursors over mmap'd segment pages
/// ([`RowCursor::from_mapped_sparse`] / [`RowCursor::from_mapped_runs`]),
/// so a join can intersect mapped rows without ever materializing them on
/// the heap. Cursors must share one universe. `out` is cleared first.
pub fn intersect_cursors_into(cursors: &mut [RowCursor], out: &mut Vec<u32>) {
    out.clear();
    if cursors.is_empty() {
        return;
    }
    let Some(mut candidate) = cursors[0].peek() else {
        return;
    };
    'outer: loop {
        // Try to align every cursor on `candidate`.
        let mut agreed = 0usize;
        while agreed < cursors.len() {
            for (k, cur) in cursors.iter_mut().enumerate() {
                let Some(p) = cur.seek(candidate) else {
                    break 'outer;
                };
                if p > candidate {
                    candidate = p;
                    agreed = 0;
                    break;
                }
                agreed = k + 1;
            }
        }
        out.push(candidate);
        // Advance one cursor past the match to find the next candidate.
        cursors[0].advance();
        match cursors[0].peek() {
            Some(p) => candidate = p,
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(universe: u32, positions: &[u32]) -> BitRow {
        BitRow::from_sorted_positions(universe, positions)
    }

    #[test]
    fn and_row_all_representation_pairs() {
        // runs × runs: interval clipping across word boundaries.
        let a = row(256, &(60..140).collect::<Vec<_>>());
        let b = row(256, &(100..200).collect::<Vec<_>>());
        assert!(!a.is_sparse() && !b.is_sparse());
        assert_eq!(
            a.and_row(&b).iter_ones().collect::<Vec<_>>(),
            (100..140).collect::<Vec<_>>()
        );
        // runs × sparse: probing.
        let s = row(256, &[3, 64, 99, 139, 140, 255]);
        assert!(s.is_sparse());
        assert_eq!(
            a.and_row(&s).iter_ones().collect::<Vec<_>>(),
            vec![64, 99, 139]
        );
        assert_eq!(
            s.and_row(&a).iter_ones().collect::<Vec<_>>(),
            vec![64, 99, 139]
        );
        // sparse × sparse: galloping.
        let t = row(256, &[0, 64, 140, 255]);
        assert_eq!(
            s.and_row(&t).iter_ones().collect::<Vec<_>>(),
            vec![64, 140, 255]
        );
        // Disjoint → canonical empty.
        let d = row(256, &[1, 2]);
        let e = s.and_row(&d);
        assert!(e.is_empty());
        assert_eq!(e, row(256, &[]));
    }

    #[test]
    fn and_row_into_reuses_buffers_and_matches() {
        let a = row(1000, &(100..400).collect::<Vec<_>>());
        let b = row(1000, &[0, 150, 151, 152, 399, 400, 999]);
        let mut dst = BitRow::empty(1000);
        let mut scratch = SetScratch::default();
        a.and_row_into(&b, &mut dst, &mut scratch);
        assert_eq!(dst, a.and_row(&b));
        let before = scratch.grows();
        for _ in 0..10 {
            a.and_row_into(&b, &mut dst, &mut scratch);
        }
        assert_eq!(scratch.grows(), before, "steady state must not grow");
        assert!(scratch.reuses() >= 10);
    }

    #[test]
    fn and_mask_in_place_clipped_mask_lengths() {
        let mut r = row(300, &[0, 1, 2, 3, 100, 290, 299]);
        let mut scratch = SetScratch::default();
        // Shorter mask: bits beyond its length read as zero.
        let mask = BitVec::from_positions(128, [1, 2, 100, 127]);
        r.and_mask_in_place(&mask, &mut scratch);
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), vec![1, 2, 100]);
        assert_eq!(r.universe(), 300);
        // Longer mask: extra bits are irrelevant.
        let mut r2 = row(64, &[0, 63]);
        let mask = BitVec::from_positions(128, [63, 100]);
        r2.and_mask_in_place(&mask, &mut scratch);
        assert_eq!(r2.iter_ones().collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn representation_flip_roundtrip() {
        // Runs row masked down to isolated bits flips to Sparse, and the
        // hybrid rule matches from_sorted_positions exactly.
        let mut r = row(256, &(0..100).collect::<Vec<_>>());
        assert!(!r.is_sparse());
        let mut scratch = SetScratch::default();
        let mask = BitVec::from_positions(256, [5, 50]);
        r.and_mask_in_place(&mask, &mut scratch);
        assert!(r.is_sparse());
        assert_eq!(r, row(256, &[5, 50]));
        // And back: intersect with a full row keeps it sparse; with a run
        // superset the result re-derives the canonical representation.
        let full = BitRow::full(256);
        let mut dst = BitRow::empty(256);
        r.and_row_into(&full, &mut dst, &mut scratch);
        assert_eq!(dst, r);
    }

    #[test]
    fn kway_leapfrog_matches_pairwise() {
        let a = row(512, &(0..256).step_by(2).collect::<Vec<_>>());
        let b = row(512, &(0..300).step_by(3).collect::<Vec<_>>());
        let c = row(512, &(0..512).collect::<Vec<_>>());
        let mut out = Vec::new();
        intersect_into(&[&a, &b, &c], &mut out);
        let expect: Vec<u32> = (0..256).filter(|p| p % 6 == 0).collect();
        assert_eq!(out, expect);
        // Single row = identity; empty operand = empty result.
        intersect_into(&[&a], &mut out);
        assert_eq!(out, a.iter_ones().collect::<Vec<_>>());
        let e = BitRow::empty(512);
        intersect_into(&[&a, &e], &mut out);
        assert!(out.is_empty());
        intersect_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cursor_seek_runs_and_sparse() {
        let r = row(300, &[10, 11, 12, 13, 64, 65, 66, 67, 200, 201, 202, 203]);
        assert!(!r.is_sparse());
        let mut c = RowCursor::new(&r);
        assert_eq!(c.peek(), Some(10));
        assert_eq!(c.seek(12), Some(12));
        assert_eq!(c.seek(14), Some(64));
        assert_eq!(c.seek(300), None);
        let s = row(300, &[5, 90, 250]);
        let mut c = RowCursor::new(&s);
        assert_eq!(c.seek(6), Some(90));
        c.advance();
        assert_eq!(c.peek(), Some(250));
        c.advance();
        assert_eq!(c.peek(), None);
    }
}
