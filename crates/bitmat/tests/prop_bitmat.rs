//! Property tests: compressed rows and matrices must agree with a naive
//! uncompressed model on every operation, and the disk codec must be
//! lossless.

use lbr_bitmat::{BitMat, BitRow, BitVec, RetainDim};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_positions(universe: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..universe, 0..(universe as usize).min(80))
        .prop_map(|s| s.into_iter().collect())
}

/// Runs-biased rows: dense blocks interleaved with isolated bits.
fn arb_blocky_positions(universe: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec((0..universe, 1u32..12), 0..8).prop_map(move |blocks| {
        let mut set = BTreeSet::new();
        for (start, len) in blocks {
            for p in start..(start + len).min(universe) {
                set.insert(p);
            }
        }
        set.into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn row_ops_match_reference(
        a in arb_blocky_positions(300),
        b in arb_positions(300),
    ) {
        let row = BitRow::from_sorted_positions(300, &a);
        let mask = BitVec::from_positions(300, b.iter().copied());

        // count / iterate / contains
        prop_assert_eq!(row.count_ones() as usize, a.len());
        prop_assert_eq!(row.iter_ones().collect::<Vec<_>>(), a.clone());
        for p in 0..300 {
            prop_assert_eq!(row.contains(p), a.binary_search(&p).is_ok());
        }

        // AND against the mask.
        let expect: Vec<u32> = a.iter().copied().filter(|p| b.contains(p)).collect();
        let got = row.and_mask(&mask);
        prop_assert_eq!(got.iter_ones().collect::<Vec<_>>(), expect);

        // OR into an accumulator seeded with b.
        let mut acc = mask.clone();
        row.or_into(&mut acc);
        let expect: BTreeSet<u32> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(acc.iter_ones().collect::<Vec<_>>(), expect.into_iter().collect::<Vec<_>>());

        // Hybrid is never larger than pure RLE.
        prop_assert!(row.encoded_bytes() <= row.rle_only_bytes());
    }

    #[test]
    fn row_codec_roundtrip(a in arb_blocky_positions(400)) {
        let row = BitRow::from_sorted_positions(400, &a);
        let mut buf = Vec::new();
        row.write_to(&mut buf);
        let (back, used) = BitRow::read_from(&buf, 400).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, row);
    }

    #[test]
    fn matrix_fold_unfold_match_reference(
        pairs in prop::collection::btree_set((0u32..40, 0u32..50), 0..120),
        row_mask in arb_positions(40),
        col_mask in arb_positions(50),
    ) {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let m = BitMat::from_sorted_pairs(40, 50, &pairs);
        prop_assert_eq!(m.triple_count() as usize, pairs.len());
        prop_assert_eq!(m.iter().collect::<Vec<_>>(), pairs.clone());

        // fold = projection of distinct coordinates.
        let rows_expect: BTreeSet<u32> = pairs.iter().map(|&(r, _)| r).collect();
        let cols_expect: BTreeSet<u32> = pairs.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(
            m.fold(RetainDim::Row).iter_ones().collect::<BTreeSet<_>>(), rows_expect);
        prop_assert_eq!(
            m.fold(RetainDim::Col).iter_ones().collect::<BTreeSet<_>>(), cols_expect);

        // unfold = triple filtering on the retained dimension.
        let rmask = BitVec::from_positions(40, row_mask.iter().copied());
        let mut mr = m.clone();
        mr.unfold(&rmask, RetainDim::Row);
        let expect: Vec<(u32, u32)> =
            pairs.iter().copied().filter(|&(r, _)| row_mask.contains(&r)).collect();
        prop_assert_eq!(mr.iter().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(mr.triple_count() as usize, expect.len());

        let cmask = BitVec::from_positions(50, col_mask.iter().copied());
        let mut mc = m.clone();
        mc.unfold(&cmask, RetainDim::Col);
        let expect: Vec<(u32, u32)> =
            pairs.iter().copied().filter(|&(_, c)| col_mask.contains(&c)).collect();
        prop_assert_eq!(mc.iter().collect::<Vec<_>>(), expect.clone());

        // transpose is an involution and flips coordinates.
        let t = m.transpose();
        prop_assert_eq!(t.triple_count(), m.triple_count());
        for &(r, c) in &pairs {
            prop_assert!(t.get(c, r));
        }
        prop_assert_eq!(t.transpose(), m);
    }
}
