//! Property tests: compressed rows and matrices must agree with a naive
//! uncompressed model on every operation, the run-aware set-algebra
//! kernels must agree with the dense [`BitVec`] oracle, and the disk codec
//! must be lossless.

use lbr_bitmat::kernel::intersect_into;
use lbr_bitmat::{BitMat, BitRow, BitVec, RetainDim, SetScratch};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_positions(universe: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..universe, 0..(universe as usize).min(80))
        .prop_map(|s| s.into_iter().collect())
}

/// Runs-biased rows: dense blocks interleaved with isolated bits.
fn arb_blocky_positions(universe: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec((0..universe, 1u32..12), 0..8).prop_map(move |blocks| {
        let mut set = BTreeSet::new();
        for (start, len) in blocks {
            for p in start..(start + len).min(universe) {
                set.insert(p);
            }
        }
        set.into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn row_ops_match_reference(
        a in arb_blocky_positions(300),
        b in arb_positions(300),
    ) {
        let row = BitRow::from_sorted_positions(300, &a);
        let mask = BitVec::from_positions(300, b.iter().copied());

        // count / iterate / contains
        prop_assert_eq!(row.count_ones() as usize, a.len());
        prop_assert_eq!(row.iter_ones().collect::<Vec<_>>(), a.clone());
        for p in 0..300 {
            prop_assert_eq!(row.contains(p), a.binary_search(&p).is_ok());
        }

        // AND against the mask.
        let expect: Vec<u32> = a.iter().copied().filter(|p| b.contains(p)).collect();
        let got = row.and_mask(&mask);
        prop_assert_eq!(got.iter_ones().collect::<Vec<_>>(), expect);

        // OR into an accumulator seeded with b.
        let mut acc = mask.clone();
        row.or_into(&mut acc);
        let expect: BTreeSet<u32> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(acc.iter_ones().collect::<Vec<_>>(), expect.into_iter().collect::<Vec<_>>());

        // Hybrid is never larger than pure RLE.
        prop_assert!(row.encoded_bytes() <= row.rle_only_bytes());
    }

    /// Every pairwise kernel (run×run clipping, run×sparse probing,
    /// sparse×sparse galloping) against the dense AND oracle, on a
    /// word-boundary universe (`256 % 64 == 0`) so tail-word handling is
    /// exercised, including empty and full operands.
    #[test]
    fn and_row_matches_dense_oracle(
        a in arb_blocky_positions(256),
        b in arb_positions(256),
        full_a in any::<bool>(),
        empty_b in any::<bool>(),
    ) {
        let ra = if full_a { BitRow::full(256) } else { BitRow::from_sorted_positions(256, &a) };
        let rb = if empty_b { BitRow::empty(256) } else { BitRow::from_sorted_positions(256, &b) };
        // Dense oracle: AND of the expanded masks.
        let mut oracle = ra.to_bitvec();
        oracle.and_assign(&rb.to_bitvec());
        let expect: Vec<u32> = oracle.iter_ones().collect();

        // Allocating kernel, both operand orders.
        prop_assert_eq!(ra.and_row(&rb).iter_ones().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(rb.and_row(&ra).iter_ones().collect::<Vec<_>>(), expect.clone());
        // Kernel output representation must equal the canonical one.
        prop_assert_eq!(ra.and_row(&rb), BitRow::from_sorted_positions(256, &expect));

        // In-place kernel through reused scratch + destination.
        let mut scratch = SetScratch::default();
        let mut dst = BitRow::empty(256);
        for _ in 0..2 {
            ra.and_row_into(&rb, &mut dst, &mut scratch);
            prop_assert_eq!(dst.iter_ones().collect::<Vec<_>>(), expect.clone());
            prop_assert_eq!(dst.count_ones() as usize, expect.len());
        }

        // k-way leapfrog degenerates to the same answer for k = 2, and
        // agrees on k = 3 with a full third operand.
        let mut out = Vec::new();
        intersect_into(&[&ra, &rb], &mut out);
        prop_assert_eq!(out.clone(), expect.clone());
        let full = BitRow::full(256);
        intersect_into(&[&ra, &rb, &full], &mut out);
        prop_assert_eq!(out, expect);
    }

    /// The rewritten `and_mask` (and its in-place form) against the dense
    /// oracle, including masks shorter and longer than the universe for the
    /// clipped in-place semantics.
    #[test]
    fn and_mask_in_place_matches_dense_oracle(
        a in arb_blocky_positions(320),
        b in arb_positions(320),
        mask_len in (0usize..4).prop_map(|i| [64u32, 256, 320, 448][i]),
    ) {
        let row = BitRow::from_sorted_positions(320, &a);
        let mask = BitVec::from_positions(mask_len, b.iter().copied().filter(|&p| p < mask_len));
        let expect: Vec<u32> = a.iter().copied()
            .filter(|&p| p < mask_len && b.contains(&p))
            .collect();
        let mut scratch = SetScratch::default();
        let mut got = row.clone();
        got.and_mask_in_place(&mask, &mut scratch);
        prop_assert_eq!(got.iter_ones().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(got.universe(), 320);
        prop_assert_eq!(got, BitRow::from_sorted_positions(320, &expect));
        // Exact-length mask: the allocating wrapper agrees.
        if mask_len == 320 {
            prop_assert_eq!(row.and_mask(&mask), got);
        }
        // In-place repetition is idempotent and allocation-stable.
        let grows = scratch.grows();
        let mut again = got.clone();
        again.and_mask_in_place(&mask, &mut scratch);
        prop_assert_eq!(again, got);
        prop_assert!(scratch.grows() <= grows + 1);
    }

    /// `or_into` (word-batched sparse path) and `or_into_clipped` against
    /// the dense oracle, on a word-boundary universe.
    #[test]
    fn or_into_matches_dense_oracle(
        a in arb_positions(256),
        seed in arb_blocky_positions(256),
        clip_len in (0usize..6).prop_map(|i| [0u32, 1, 63, 64, 128, 256][i]),
    ) {
        let row = BitRow::from_sorted_positions(256, &a);
        let mut acc = BitVec::from_positions(256, seed.iter().copied());
        row.or_into(&mut acc);
        let expect: BTreeSet<u32> = a.iter().chain(seed.iter()).copied().collect();
        prop_assert_eq!(acc.iter_ones().collect::<Vec<_>>(),
                        expect.into_iter().collect::<Vec<_>>());

        let mut clipped = BitVec::zeros(clip_len);
        row.or_into_clipped(&mut clipped);
        let expect: Vec<u32> = a.iter().copied().filter(|&p| p < clip_len).collect();
        prop_assert_eq!(clipped.iter_ones().collect::<Vec<_>>(), expect);
    }

    /// `fold_or_clipped` / `unfold_with` agree with the allocating
    /// `fold().resized()` / resized-mask `unfold` they replace.
    #[test]
    fn clipped_fold_unfold_match_allocating_path(
        pairs in prop::collection::btree_set((0u32..64, 0u32..80), 0..150),
        mask_bits in arb_positions(80),
        space in (0usize..4).prop_map(|i| [16u32, 64, 80, 128][i]),
    ) {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let m = BitMat::from_sorted_pairs(64, 80, &pairs);
        for dim in [RetainDim::Row, RetainDim::Col] {
            let mut acc = BitVec::zeros(space);
            m.fold_or_clipped(dim, &mut acc);
            prop_assert_eq!(acc, m.fold(dim).resized(space));
        }
        // unfold_with on a short/long mask == unfold on the resized mask.
        let mask = BitVec::from_positions(space, mask_bits.iter().copied().filter(|&p| p < space));
        let mut scratch = SetScratch::default();
        let mut a = m.clone();
        a.unfold_with(&mask, RetainDim::Col, &mut scratch);
        let mut b = m.clone();
        b.unfold(&mask.resized(80), RetainDim::Col);
        prop_assert_eq!(&a, &b);
        let mut a = m.clone();
        a.unfold_with(&mask, RetainDim::Row, &mut scratch);
        let mut b = m;
        b.unfold(&mask.resized(64), RetainDim::Row);
        prop_assert_eq!(a, b);
    }

    /// k-way leapfrog against the iterated dense oracle for 1–5 operands of
    /// mixed representations.
    #[test]
    fn kway_intersection_matches_dense_oracle(
        sets in prop::collection::vec(arb_blocky_positions(192), 1..5),
    ) {
        let rows: Vec<BitRow> =
            sets.iter().map(|s| BitRow::from_sorted_positions(192, s)).collect();
        let refs: Vec<&BitRow> = rows.iter().collect();
        let mut oracle = BitVec::ones(192);
        for r in &rows {
            oracle.and_assign(&r.to_bitvec());
        }
        let mut out = Vec::new();
        intersect_into(&refs, &mut out);
        prop_assert_eq!(out, oracle.iter_ones().collect::<Vec<_>>());
    }

    #[test]
    fn row_codec_roundtrip(a in arb_blocky_positions(400)) {
        let row = BitRow::from_sorted_positions(400, &a);
        let mut buf = Vec::new();
        row.write_to(&mut buf);
        let (back, used) = BitRow::read_from(&buf, 400).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, row);
    }

    #[test]
    fn matrix_fold_unfold_match_reference(
        pairs in prop::collection::btree_set((0u32..40, 0u32..50), 0..120),
        row_mask in arb_positions(40),
        col_mask in arb_positions(50),
    ) {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let m = BitMat::from_sorted_pairs(40, 50, &pairs);
        prop_assert_eq!(m.triple_count() as usize, pairs.len());
        prop_assert_eq!(m.iter().collect::<Vec<_>>(), pairs.clone());

        // fold = projection of distinct coordinates.
        let rows_expect: BTreeSet<u32> = pairs.iter().map(|&(r, _)| r).collect();
        let cols_expect: BTreeSet<u32> = pairs.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(
            m.fold(RetainDim::Row).iter_ones().collect::<BTreeSet<_>>(), rows_expect);
        prop_assert_eq!(
            m.fold(RetainDim::Col).iter_ones().collect::<BTreeSet<_>>(), cols_expect);

        // unfold = triple filtering on the retained dimension.
        let rmask = BitVec::from_positions(40, row_mask.iter().copied());
        let mut mr = m.clone();
        mr.unfold(&rmask, RetainDim::Row);
        let expect: Vec<(u32, u32)> =
            pairs.iter().copied().filter(|&(r, _)| row_mask.contains(&r)).collect();
        prop_assert_eq!(mr.iter().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(mr.triple_count() as usize, expect.len());

        let cmask = BitVec::from_positions(50, col_mask.iter().copied());
        let mut mc = m.clone();
        mc.unfold(&cmask, RetainDim::Col);
        let expect: Vec<(u32, u32)> =
            pairs.iter().copied().filter(|&(_, c)| col_mask.contains(&c)).collect();
        prop_assert_eq!(mc.iter().collect::<Vec<_>>(), expect.clone());

        // transpose is an involution and flips coordinates.
        let t = m.transpose();
        prop_assert_eq!(t.triple_count(), m.triple_count());
        for &(r, c) in &pairs {
            prop_assert!(t.get(c, r));
        }
        prop_assert_eq!(t.transpose(), m);
    }
}
