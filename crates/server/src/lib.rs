//! # lbr-server
//!
//! A W3C **SPARQL 1.1 Protocol** HTTP endpoint over the LBR engine — the
//! serving layer of the workspace, built on `std::net` with zero
//! external dependencies.
//!
//! * `GET /sparql?query=…` and `POST /sparql` (both
//!   `application/x-www-form-urlencoded` and raw
//!   `application/sparql-query` bodies) execute queries;
//! * `Accept` negotiation selects the W3C SPARQL JSON
//!   (`application/sparql-results+json`, the default), W3C TSV
//!   (`text/tab-separated-values`) or the CLI's human table
//!   (`text/plain`) — responses are **streamed** onto the socket through
//!   `lbr::format`'s writer-generic serializers, byte-identical to
//!   `lbr-cli --format` output for the same query;
//! * `POST /update` (form `update=…` or raw `application/sparql-update`
//!   bodies) executes SPARQL 1.1 Update requests when the database was
//!   built updatable ([`lbr::DatabaseBuilder::wal_dir`] /
//!   [`lbr::DatabaseBuilder::updatable`]; `lbr-server --wal-dir`),
//!   answering `{"inserted":…,"deleted":…,"epoch":…}` — against a
//!   read-only database it answers 403;
//! * every execution goes through one shared [`lbr::PlanCache`], so a
//!   repeated query (modulo whitespace) skips parsing + UNF rewrite +
//!   GoSN/GoJ planning entirely; updates bump the database epoch, which
//!   invalidates cached plans (counted as `epoch_evictions`);
//! * `GET /healthz` answers `ok`; `GET /stats` reports plan-cache
//!   hit/miss/eviction counters (including `epoch_evictions`), update
//!   counters, the storage epoch, and aggregated
//!   [`StatsAggregate`](lbr_core::StatsAggregate) query statistics as
//!   JSON.
//!
//! Concurrency model: a fixed-size worker pool (one OS thread per
//! worker) pops accepted connections off an `mpsc` channel and serves
//! one request per connection (`Connection: close`). All workers share
//! one `Arc<Database>` — engines are thin read-only borrows, and
//! `Engine: Send + Sync` makes the sharing a compile-time guarantee.
//!
//! ```no_run
//! use lbr::Database;
//! use lbr_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::from_ntriples("<a> <p> <b> .").unwrap());
//! let server = Server::bind("127.0.0.1:7878", db, ServerConfig::default()).unwrap();
//! eprintln!("listening on http://{}", server.local_addr().unwrap());
//! server.run().unwrap(); // blocks, serving forever
//! ```

#![forbid(unsafe_code)]

pub mod http;

use http::{parse_form, read_request, write_error, write_head, write_text};
use http::{HttpError, Request};
use lbr::core::{LbrError, StatsAggregate};
use lbr::{Database, OutputFormat, PlanCache, UpdateError};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests (default: available parallelism,
    /// at least 2 so one slow query cannot starve `/healthz`).
    pub workers: usize,
    /// Plan-cache capacity in entries.
    pub cache_capacity: usize,
    /// Per-connection socket read timeout (dead clients cannot pin a
    /// worker forever).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: lbr::core::api::default_threads().max(2),
            cache_capacity: 256,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Shared per-server state handed to every worker.
struct Service {
    db: Arc<Database>,
    cache: PlanCache,
    agg: Mutex<StatsAggregate>,
    read_timeout: Duration,
    /// `/update` requests that committed (no-ops included).
    updates: AtomicU64,
    /// Triples actually inserted / deleted across all updates.
    update_inserted: AtomicU64,
    update_deleted: AtomicU64,
}

/// A bound (but not yet serving) SPARQL endpoint.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    workers: usize,
}

impl Server {
    /// Binds the endpoint. Use port `0` for an ephemeral port and read it
    /// back with [`Server::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: Arc<Database>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service: Arc::new(Service {
                db,
                cache: PlanCache::new(config.cache_capacity),
                agg: Mutex::new(StatsAggregate::default()),
                read_timeout: config.read_timeout,
                updates: AtomicU64::new(0),
                update_inserted: AtomicU64::new(0),
                update_deleted: AtomicU64::new(0),
            }),
            workers: config.workers.max(1),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serves forever on the calling thread (workers run on their own
    /// threads). Only returns on listener failure.
    pub fn run(self) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.serve(stop)
    }

    /// Serves on background threads, returning a handle that stops the
    /// server when dropped — what tests and the bench harness use.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let service = Arc::clone(&self.service);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let _ = self.serve(stop2);
        });
        Ok(ServerHandle {
            addr,
            service,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    fn serve(self, stop: Arc<AtomicBool>) -> std::io::Result<()> {
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let receiver = Arc::clone(&receiver);
            let service = Arc::clone(&self.service);
            workers.push(std::thread::spawn(move || loop {
                // Holding the recv lock only while popping keeps the
                // pool work-stealing: whichever worker is free takes the
                // next connection.
                let next = receiver.lock().expect("worker queue poisoned").recv();
                match next {
                    Ok(stream) => service.handle_connection(stream),
                    Err(_) => return, // acceptor gone: shut down
                }
            }));
        }
        for stream in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            match stream {
                Ok(stream) => {
                    // Only fails when every worker died; surface as done.
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    // Transient accept errors (EMFILE, aborted handshake)
                    // should not kill the server.
                    eprintln!("lbr-server: accept error: {e}");
                }
            }
        }
        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// A running server (from [`Server::spawn`]); stops on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Plan-cache counters (what `/stats` reports).
    pub fn cache_stats(&self) -> lbr::CacheStats {
        self.service.cache.stats()
    }

    /// Aggregated query statistics (what `/stats` reports).
    pub fn query_stats(&self) -> StatsAggregate {
        self.service.agg.lock().expect("stats poisoned").clone()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Service {
    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        match read_request(&mut reader) {
            Ok(request) => {
                if let Err(err) = self.respond(&request, &mut writer) {
                    // Headers may already be out; best effort only.
                    let _ = write_error(&mut writer, &err);
                }
            }
            Err(err) => {
                let _ = write_error(&mut writer, &err);
            }
        }
        let _ = writer.flush();
    }

    /// Routes one request. Returns `Err` only while nothing has been
    /// written yet, so the caller can still emit a clean error response.
    fn respond(&self, request: &Request, w: &mut impl Write) -> Result<(), HttpError> {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                // Write failures past this point mean the client hung up;
                // the response has (partially) started, so per this
                // method's contract they are swallowed, not turned into a
                // trailing error response.
                let _ = write_text(w, 200, "ok\n");
            }
            (_, "/healthz") => return Err(HttpError::method_not_allowed("GET")),
            ("GET", "/stats") => {
                let body = self.stats_json();
                let _ = write_head(
                    w,
                    200,
                    "application/json",
                    &[("Content-Length", &body.len().to_string())],
                )
                .and_then(|()| w.write_all(body.as_bytes()));
            }
            (_, "/stats") => return Err(HttpError::method_not_allowed("GET")),
            ("GET", "/sparql") => {
                let query = query_from_get(request)?;
                self.execute(&query, request, w)?;
            }
            ("POST", "/sparql") => {
                let query = query_from_post(request)?;
                self.execute(&query, request, w)?;
            }
            (_, "/sparql") => return Err(HttpError::method_not_allowed("GET, POST")),
            ("POST", "/update") => {
                let update = update_from_post(request)?;
                self.update(&update, w)?;
            }
            (_, "/update") => return Err(HttpError::method_not_allowed("POST")),
            _ => {
                return Err(HttpError::new(
                    404,
                    format!(
                        "no such resource {}; the endpoints are /sparql and /update \
                         (plus /healthz, /stats)",
                        request.path
                    ),
                ))
            }
        }
        Ok(())
    }

    /// Executes a SPARQL query through the shared plan cache and streams
    /// the negotiated serialization straight onto the socket.
    fn execute(
        &self,
        query_text: &str,
        request: &Request,
        w: &mut impl Write,
    ) -> Result<(), HttpError> {
        let format = negotiate(request.header("accept"))?;
        // One pinned view serves the whole request: plan validation,
        // execution and result decoding all see the same snapshot even
        // if an update commits mid-request.
        let view = self.db.read();
        let cached = self
            .cache
            .get_or_prepare(&self.db, query_text)
            .map_err(|e| self.query_error(e))?;
        let output = view
            .execute_plan(&cached)
            .map_err(|e| self.query_error(e))?;
        self.agg
            .lock()
            .expect("stats poisoned")
            .record(&output.stats);
        // From the first head byte on, errors are swallowed: the response
        // is underway and `respond`'s contract ("Err only while nothing
        // has been written") forbids bolting a 500 onto a half-sent 200
        // body. An i/o failure here means the client hung up — closing
        // the connection (which truncates the close-delimited body) is
        // all that can be signalled.
        let _ = write_head(w, 200, format.media_type(), &[])
            .and_then(|()| format.write_to(w, cached.query(), &output, view.dict()));
        Ok(())
    }

    /// Executes a SPARQL 1.1 Update request and answers a small JSON
    /// summary. The whole request commits atomically (durably, when the
    /// store has a WAL) before the response is written.
    fn update(&self, update_text: &str, w: &mut impl Write) -> Result<(), HttpError> {
        let outcome = self.db.update(update_text).map_err(update_error)?;
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.update_inserted
            .fetch_add(outcome.inserted, Ordering::Relaxed);
        self.update_deleted
            .fetch_add(outcome.deleted, Ordering::Relaxed);
        let body = format!(
            "{{\"inserted\":{},\"deleted\":{},\"epoch\":{}}}\n",
            outcome.inserted, outcome.deleted, outcome.epoch
        );
        let _ = write_head(
            w,
            200,
            "application/json",
            &[("Content-Length", &body.len().to_string())],
        )
        .and_then(|()| w.write_all(body.as_bytes()));
        Ok(())
    }

    fn query_error(&self, e: LbrError) -> HttpError {
        self.agg.lock().expect("stats poisoned").record_error();
        match e {
            // The client's query is at fault.
            LbrError::Sparql(_) | LbrError::Unsupported(_) => HttpError::new(400, e.to_string()),
            // The server (or its configuration) is.
            LbrError::BitMat(_) | LbrError::ResourceLimit(_) => HttpError::new(500, e.to_string()),
        }
    }

    /// `/stats` as hand-rolled JSON (no serde in the build environment).
    fn stats_json(&self) -> String {
        let cache = self.cache.stats();
        let agg = self.agg.lock().expect("stats poisoned").clone();
        format!(
            concat!(
                "{{\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},",
                "\"epoch_evictions\":{},\"len\":{},\"capacity\":{}}},",
                "\"queries\":{{\"ok\":{},\"errors\":{},\"rows\":{},",
                "\"rows_with_nulls\":{},\"nb_required\":{},\"join_seeds\":{},",
                "\"prune_intersections\":{},\"scratch_reuses\":{},",
                "\"t_total_ms\":{:.3},\"avg_ms\":{:.3}}},",
                "\"updates\":{{\"requests\":{},\"inserted\":{},\"deleted\":{}}},",
                "\"database\":{{\"engine\":\"{}\",\"triples\":{},\"threads\":{},",
                "\"epoch\":{},\"updatable\":{}}}}}\n"
            ),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.epoch_evictions,
            cache.len,
            cache.capacity,
            agg.queries,
            agg.errors,
            agg.rows,
            agg.rows_with_nulls,
            agg.nb_required_queries,
            agg.join_seeds,
            agg.prune_intersections,
            agg.scratch_reuses,
            agg.t_total.as_secs_f64() * 1e3,
            agg.avg_total().as_secs_f64() * 1e3,
            self.updates.load(Ordering::Relaxed),
            self.update_inserted.load(Ordering::Relaxed),
            self.update_deleted.load(Ordering::Relaxed),
            self.db.engine_kind(),
            self.db.len(),
            self.db.threads(),
            self.db.epoch(),
            self.db.mutable_store().is_some(),
        )
    }
}

/// Extracts the query from a GET request's query string (`?query=…`,
/// percent-decoded with `+` as space).
fn query_from_get(request: &Request) -> Result<String, HttpError> {
    let qs = request
        .query_string
        .as_deref()
        .ok_or_else(|| HttpError::new(400, "missing query string (?query=…)"))?;
    let pairs = parse_form(qs)?;
    pairs
        .into_iter()
        .find(|(k, _)| k == "query")
        .map(|(_, v)| v)
        .ok_or_else(|| HttpError::new(400, "missing 'query' parameter"))
}

/// Extracts the query from a POST body per its `Content-Type`: the two
/// SPARQL Protocol flavors are urlencoded forms and raw
/// `application/sparql-query`; anything else is 415.
fn query_from_post(request: &Request) -> Result<String, HttpError> {
    match request.content_type().as_deref() {
        Some("application/x-www-form-urlencoded") => {
            let body = std::str::from_utf8(&request.body)
                .map_err(|_| HttpError::new(400, "form body is not UTF-8"))?;
            parse_form(body)?
                .into_iter()
                .find(|(k, _)| k == "query")
                .map(|(_, v)| v)
                .ok_or_else(|| HttpError::new(400, "missing 'query' form field"))
        }
        Some("application/sparql-query") => String::from_utf8(request.body.clone())
            .map_err(|_| HttpError::new(400, "query body is not UTF-8")),
        Some(other) => Err(HttpError::new(
            415,
            format!(
                "unsupported media type '{other}'; use application/x-www-form-urlencoded \
                 or application/sparql-query"
            ),
        )),
        None => Err(HttpError::new(
            415,
            "missing Content-Type; use application/x-www-form-urlencoded \
             or application/sparql-query",
        )),
    }
}

/// Extracts the update request from a POST body per its `Content-Type`:
/// the two SPARQL Protocol flavors are urlencoded forms (`update=…`) and
/// raw `application/sparql-update`; anything else is 415.
fn update_from_post(request: &Request) -> Result<String, HttpError> {
    match request.content_type().as_deref() {
        Some("application/x-www-form-urlencoded") => {
            let body = std::str::from_utf8(&request.body)
                .map_err(|_| HttpError::new(400, "form body is not UTF-8"))?;
            parse_form(body)?
                .into_iter()
                .find(|(k, _)| k == "update")
                .map(|(_, v)| v)
                .ok_or_else(|| HttpError::new(400, "missing 'update' form field"))
        }
        Some("application/sparql-update") => String::from_utf8(request.body.clone())
            .map_err(|_| HttpError::new(400, "update body is not UTF-8")),
        Some(other) => Err(HttpError::new(
            415,
            format!(
                "unsupported media type '{other}'; use application/x-www-form-urlencoded \
                 or application/sparql-update"
            ),
        )),
        None => Err(HttpError::new(
            415,
            "missing Content-Type; use application/x-www-form-urlencoded \
             or application/sparql-update",
        )),
    }
}

/// Maps an update failure to a protocol status: the client's request is
/// at fault for parse errors (400); updating a read-only database is
/// forbidden (403); evaluation errors split like query errors; a WAL
/// write failure is the server's problem (500).
fn update_error(e: UpdateError) -> HttpError {
    match e {
        UpdateError::Parse(_) => HttpError::new(400, e.to_string()),
        UpdateError::ReadOnly => HttpError::new(403, e.to_string()),
        UpdateError::Eval(LbrError::Sparql(_)) | UpdateError::Eval(LbrError::Unsupported(_)) => {
            HttpError::new(400, e.to_string())
        }
        UpdateError::Eval(_) | UpdateError::Store(_) => HttpError::new(500, e.to_string()),
    }
}

/// Content negotiation over `Accept`: first acceptable media range wins
/// (q-values are ignored — list order is the preference order).
/// No header, an empty header, or a wildcard selects the protocol
/// default, W3C SPARQL JSON. Unmatchable ranges are 406.
pub fn negotiate(accept: Option<&str>) -> Result<OutputFormat, HttpError> {
    let Some(accept) = accept else {
        return Ok(OutputFormat::Json);
    };
    let mut saw_any = false;
    for item in accept.split(',') {
        let media = item
            .split(';')
            .next()
            .unwrap_or("")
            .trim()
            .to_ascii_lowercase();
        if media.is_empty() {
            continue;
        }
        saw_any = true;
        match media.as_str() {
            "application/sparql-results+json" | "application/json" => {
                return Ok(OutputFormat::Json)
            }
            "text/tab-separated-values" => return Ok(OutputFormat::Tsv),
            "text/plain" => return Ok(OutputFormat::Table),
            "*/*" | "application/*" => return Ok(OutputFormat::Json),
            "text/*" => return Ok(OutputFormat::Tsv),
            _ => continue,
        }
    }
    if !saw_any {
        return Ok(OutputFormat::Json);
    }
    Err(HttpError::new(
        406,
        format!(
            "no acceptable representation for '{accept}'; offered: \
             application/sparql-results+json, text/tab-separated-values, text/plain"
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr::parse_query;
    use std::io::Read;

    const DATA: &str = r#"
        <Jerry> <hasFriend> <Julia> .
        <Jerry> <hasFriend> <Larry> .
        <Julia> <actedIn> <Seinfeld> .
        <Seinfeld> <location> <NewYorkCity> .
    "#;

    fn serve() -> ServerHandle {
        let db = Arc::new(Database::from_ntriples(DATA).unwrap());
        let config = ServerConfig {
            workers: 4,
            cache_capacity: 8,
            read_timeout: Duration::from_secs(5),
        };
        Server::bind("127.0.0.1:0", db, config)
            .unwrap()
            .spawn()
            .unwrap()
    }

    /// Sends one raw HTTP request; returns (status, headers, body).
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let (head, body) = response.split_once("\r\n\r\n").expect("blank line");
        (status, head.to_string(), body.to_string())
    }

    fn get(addr: SocketAddr, target: &str, accept: Option<&str>) -> (u16, String, String) {
        let accept_line = accept.map_or(String::new(), |a| format!("Accept: {a}\r\n"));
        roundtrip(
            addr,
            &format!("GET {target} HTTP/1.1\r\nHost: t\r\n{accept_line}\r\n"),
        )
    }

    fn post(addr: SocketAddr, content_type: Option<&str>, body: &str) -> (u16, String, String) {
        let ct = content_type.map_or(String::new(), |c| format!("Content-Type: {c}\r\n"));
        roundtrip(
            addr,
            &format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\n{ct}Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    const QUERY: &str = "SELECT * WHERE { <Jerry> <hasFriend> ?friend . } ORDER BY ?friend";
    const QUERY_ENC: &str =
        "SELECT+*+WHERE+%7B+%3CJerry%3E+%3ChasFriend%3E+%3Ffriend+.+%7D+ORDER+BY+%3Ffriend";

    fn expected(format: OutputFormat) -> String {
        let db = Database::from_ntriples(DATA).unwrap();
        let q = parse_query(QUERY).unwrap();
        let out = db.execute_query(&q).unwrap();
        format.render(&q, &out, db.dict())
    }

    #[test]
    fn get_query_streams_w3c_json() {
        let server = serve();
        let (status, head, body) = get(server.addr(), &format!("/sparql?query={QUERY_ENC}"), None);
        assert_eq!(status, 200, "{body}");
        assert!(
            head.contains("Content-Type: application/sparql-results+json"),
            "{head}"
        );
        assert_eq!(body, expected(OutputFormat::Json));
    }

    #[test]
    fn post_both_flavors_match_get() {
        let server = serve();
        let (status, _, body) = post(
            server.addr(),
            Some("application/x-www-form-urlencoded"),
            &format!("query={QUERY_ENC}"),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected(OutputFormat::Json));

        let (status, _, body) = post(server.addr(), Some("application/sparql-query"), QUERY);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected(OutputFormat::Json));
    }

    #[test]
    fn accept_negotiation_selects_tsv_and_table() {
        let server = serve();
        let target = format!("/sparql?query={QUERY_ENC}");
        let (status, head, body) = get(server.addr(), &target, Some("text/tab-separated-values"));
        assert_eq!(status, 200);
        assert!(
            head.contains("Content-Type: text/tab-separated-values"),
            "{head}"
        );
        assert_eq!(body, expected(OutputFormat::Tsv));

        let (status, _, body) = get(server.addr(), &target, Some("text/plain"));
        assert_eq!(status, 200);
        assert_eq!(body, expected(OutputFormat::Table));

        // q-values and params are tolerated; first acceptable range wins.
        let (status, _, body) = get(
            server.addr(),
            &target,
            Some("application/xml, application/sparql-results+json;q=0.9"),
        );
        assert_eq!(status, 200);
        assert_eq!(body, expected(OutputFormat::Json));
    }

    #[test]
    fn ask_boolean_over_http() {
        let server = serve();
        let (status, _, body) = get(
            server.addr(),
            "/sparql?query=ASK+%7B+%3CJerry%3E+%3ChasFriend%3E+%3Ff+.+%7D",
            None,
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "{\"head\":{},\"boolean\":true}\n");
    }

    #[test]
    fn status_codes() {
        let server = serve();
        let addr = server.addr();
        // 400: malformed escape, missing parameter, bad SPARQL.
        assert_eq!(get(addr, "/sparql?query=%G1", None).0, 400);
        assert_eq!(get(addr, "/sparql?query=SELECT%20WHERE%20%7B", None).0, 400);
        assert_eq!(get(addr, "/sparql?other=1", None).0, 400);
        assert_eq!(get(addr, "/sparql", None).0, 400);
        // 404: unknown path.
        assert_eq!(get(addr, "/nope", None).0, 404);
        // 405: wrong method, with Allow.
        let (status, head, _) = roundtrip(addr, "PUT /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
        assert!(head.contains("Allow: GET, POST"), "{head}");
        let (status, _, _) = roundtrip(
            addr,
            "POST /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 405);
        // 406: unmatchable Accept.
        assert_eq!(
            get(
                addr,
                &format!("/sparql?query={QUERY_ENC}"),
                Some("application/xml")
            )
            .0,
            406
        );
        // 411: POST without Content-Length.
        let (status, _, _) = roundtrip(addr, "POST /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 411);
        // 415: POST with the wrong media type.
        assert_eq!(post(addr, Some("text/turtle"), QUERY).0, 415);
        assert_eq!(post(addr, None, QUERY).0, 415);
    }

    #[test]
    fn healthz_and_stats_with_cache_hits() {
        let server = serve();
        let addr = server.addr();
        let (status, _, body) = get(addr, "/healthz", None);
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        // Two identical queries: 1 miss then 1 hit; an error increments
        // the error counter but never the cache.
        let target = format!("/sparql?query={QUERY_ENC}");
        assert_eq!(get(addr, &target, None).0, 200);
        assert_eq!(get(addr, &target, None).0, 200);
        assert_eq!(get(addr, "/sparql?query=NONSENSE", None).0, 400);

        let (status, head, body) = get(addr, "/stats", None);
        assert_eq!(status, 200);
        assert!(head.contains("Content-Type: application/json"), "{head}");
        assert!(body.contains("\"hits\":1"), "{body}");
        assert!(body.contains("\"misses\":"), "{body}");
        assert!(body.contains("\"evictions\":0"), "{body}");
        assert!(body.contains("\"ok\":2"), "{body}");
        assert!(body.contains("\"errors\":1"), "{body}");
        assert!(body.contains("\"rows\":4"), "{body}"); // 2 runs × 2 friends

        // Kernel observability: the prune phase ran compressed-set
        // intersections and the scratch pools were reused.
        assert!(body.contains("\"prune_intersections\":"), "{body}");
        assert!(body.contains("\"scratch_reuses\":"), "{body}");
        // The unparseable query never reached the cache: 1 miss, 1 hit.
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(server.query_stats().queries, 2);
    }

    #[test]
    fn concurrent_clients_all_get_oracle_answers() {
        let server = serve();
        let addr = server.addr();
        let json = expected(OutputFormat::Json);
        let tsv = expected(OutputFormat::Tsv);
        std::thread::scope(|scope| {
            for i in 0..8 {
                let (json, tsv) = (&json, &tsv);
                scope.spawn(move || {
                    for round in 0..6 {
                        if (i + round) % 2 == 0 {
                            let (status, _, body) =
                                get(addr, &format!("/sparql?query={QUERY_ENC}"), None);
                            assert_eq!((status, body.as_str()), (200, json.as_str()));
                        } else {
                            let (status, _, body) = get(
                                addr,
                                &format!("/sparql?query={QUERY_ENC}"),
                                Some("text/tab-separated-values"),
                            );
                            assert_eq!((status, body.as_str()), (200, tsv.as_str()));
                        }
                    }
                });
            }
        });
        let stats = server.cache_stats();
        assert_eq!(stats.hits + stats.misses, 48);
        // One canonical query: only the initial lookups can race into
        // planning, so misses are bounded by the worker count.
        assert!(stats.misses <= 4, "{stats:?}");
        assert_eq!(server.query_stats().queries, 48);
    }

    fn serve_updatable() -> ServerHandle {
        let db = Arc::new(
            Database::builder()
                .ntriples(DATA)
                .updatable()
                .build()
                .unwrap(),
        );
        let config = ServerConfig {
            workers: 4,
            cache_capacity: 8,
            read_timeout: Duration::from_secs(5),
        };
        Server::bind("127.0.0.1:0", db, config)
            .unwrap()
            .spawn()
            .unwrap()
    }

    fn post_update(addr: SocketAddr, body: &str) -> (u16, String, String) {
        let ct = "Content-Type: application/sparql-update\r\n";
        roundtrip(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\n{ct}Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn update_endpoint_inserts_and_deletes() {
        let server = serve_updatable();
        let addr = server.addr();
        let ask = "/sparql?query=ASK+%7B+%3CKramer%3E+%3ChasFriend%3E+%3Ff+.+%7D";

        // Warm the plan cache on the pre-update snapshot.
        assert!(get(addr, ask, None).2.contains("false"));
        assert!(get(addr, ask, None).2.contains("false"));

        // INSERT DATA: committed and immediately queryable.
        let (status, head, body) =
            post_update(addr, "INSERT DATA { <Kramer> <hasFriend> <Jerry> }");
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("Content-Type: application/json"), "{head}");
        assert_eq!(body, "{\"inserted\":1,\"deleted\":0,\"epoch\":1}\n");
        assert!(get(addr, ask, None).2.contains("true"), "insert visible");

        // DELETE WHERE: the pattern's instantiations are removed.
        let (status, _, body) = post_update(addr, "DELETE WHERE { <Kramer> <hasFriend> ?who }");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "{\"inserted\":0,\"deleted\":1,\"epoch\":2}\n");
        assert!(get(addr, ask, None).2.contains("false"), "delete visible");

        // The form flavor works too, and a no-op delete leaves the epoch.
        let form = "update=DELETE+DATA+%7B+%3CKramer%3E+%3ChasFriend%3E+%3CJerry%3E+%7D";
        let (status, _, body) = roundtrip(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: \
                 application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{form}",
                form.len()
            ),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "{\"inserted\":0,\"deleted\":0,\"epoch\":2}\n");

        // /stats: update counters, the bumped epoch, and the epoch
        // evictions the post-update queries caused.
        let (_, _, stats) = get(addr, "/stats", None);
        assert!(
            stats.contains("\"updates\":{\"requests\":3,\"inserted\":1,\"deleted\":1}"),
            "{stats}"
        );
        assert!(stats.contains("\"epoch\":2"), "{stats}");
        assert!(stats.contains("\"updatable\":true"), "{stats}");
        assert!(
            server.cache_stats().epoch_evictions >= 1,
            "stale plans dropped"
        );
    }

    #[test]
    fn update_against_read_only_database_is_403() {
        let server = serve();
        let (status, _, body) = post_update(server.addr(), "INSERT DATA { <x> <y> <z> }");
        assert_eq!(status, 403, "{body}");
        assert!(body.contains("read-only"), "{body}");
        // Nothing changed; stats still reports a fixed epoch-0 database.
        let (_, _, stats) = get(server.addr(), "/stats", None);
        assert!(stats.contains("\"updatable\":false"), "{stats}");
    }

    #[test]
    fn update_status_codes() {
        let server = serve_updatable();
        let addr = server.addr();
        // 400: malformed update.
        assert_eq!(post_update(addr, "INSERT NONSENSE").0, 400);
        // 405: wrong method, with Allow.
        let (status, head, _) = roundtrip(addr, "GET /update HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
        assert!(head.contains("Allow: POST"), "{head}");
        // 415: wrong media type (a query content type is not an update).
        let (status, _, _) = roundtrip(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: \
                 application/sparql-query\r\nContent-Length: {}\r\n\r\nASK {{}}",
                "ASK {}".len()
            ),
        );
        assert_eq!(status, 415);
    }

    #[test]
    fn negotiation_unit_cases() {
        assert_eq!(negotiate(None).unwrap(), OutputFormat::Json);
        assert_eq!(negotiate(Some("")).unwrap(), OutputFormat::Json);
        assert_eq!(negotiate(Some("*/*")).unwrap(), OutputFormat::Json);
        assert_eq!(negotiate(Some("text/*")).unwrap(), OutputFormat::Tsv);
        assert_eq!(
            negotiate(Some("Application/Sparql-Results+JSON")).unwrap(),
            OutputFormat::Json
        );
        assert_eq!(
            negotiate(Some("application/xml, text/plain;q=0.2")).unwrap(),
            OutputFormat::Table
        );
        assert_eq!(negotiate(Some("application/xml")).unwrap_err().status, 406);
    }
}
