//! # lbr-server
//!
//! A W3C **SPARQL 1.1 Protocol** HTTP endpoint over the LBR engine — the
//! serving layer of the workspace, built on the event-driven
//! [`lbr_net`] connection layer with zero external dependencies.
//!
//! * `GET /sparql?query=…` and `POST /sparql` (both
//!   `application/x-www-form-urlencoded` and raw
//!   `application/sparql-query` bodies) execute queries;
//! * `Accept` negotiation selects the W3C SPARQL JSON
//!   (`application/sparql-results+json`, the default), W3C TSV
//!   (`text/tab-separated-values`) or the CLI's human table
//!   (`text/plain`) — serialized through `lbr::format`'s writers,
//!   byte-identical to `lbr-cli --format` output for the same query;
//! * `POST /update` (form `update=…` or raw `application/sparql-update`
//!   bodies) executes SPARQL 1.1 Update requests when the database was
//!   built updatable ([`lbr::DatabaseBuilder::wal_dir`] /
//!   [`lbr::DatabaseBuilder::updatable`]; `lbr-server --wal-dir`),
//!   answering `{"inserted":…,"deleted":…,"epoch":…}` — against a
//!   read-only database it answers 403;
//! * every execution goes through one shared [`lbr::PlanCache`] (a
//!   repeated query skips parsing + UNF rewrite + GoSN/GoJ planning) AND
//!   one shared [`lbr::ResultCache`]: a repeated query at an unchanged
//!   store epoch skips *execution and serialization* entirely, answered
//!   from cached bytes. Updates bump the epoch, which invalidates both
//!   caches (counted as `epoch_evictions`);
//! * `GET /healthz` answers `ok`; `GET /stats` reports plan-cache and
//!   result-cache counters, admission counters (including
//!   `dropped_requests`), per-endpoint latency percentiles
//!   (p50/p95/p99/max), update counters, the storage epoch, and
//!   aggregated [`StatsAggregate`](lbr_core::StatsAggregate) query
//!   statistics as JSON.
//!
//! Concurrency model (see [`lbr_net`] for the full picture): one epoll
//! readiness loop multiplexes every connection — HTTP/1.1 keep-alive
//! and pipelining included — and parsed requests pass through a
//! *bounded admission queue* to a worker pool. A full queue is answered
//! `503` + `Retry-After` inline; admitted requests carry a deadline
//! that propagates into the join kernels, so a query that outlives its
//! budget is cut short and answered `504`. All workers share one
//! `Arc<Database>` — engines are thin read-only borrows, and
//! `Engine: Send + Sync` makes the sharing a compile-time guarantee.
//!
//! ```no_run
//! use lbr::Database;
//! use lbr_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::from_ntriples("<a> <p> <b> .").unwrap());
//! let server = Server::bind("127.0.0.1:7878", db, ServerConfig::default()).unwrap();
//! eprintln!("listening on http://{}", server.local_addr().unwrap());
//! server.run().unwrap(); // blocks, serving until shut down
//! ```

#![forbid(unsafe_code)]

pub mod http;

use http::{parse_form, HttpError, Request, Response};
use lbr::core::{LbrError, StatsAggregate};
use lbr::{Database, OutputFormat, PlanCache, ResultCache, UpdateError};
use lbr_net::{Handler, LatencyHistogram, NetCounters, NetServer, Shutdown};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests (default: available
    /// parallelism, at least 2 so one slow query cannot starve
    /// `/healthz`).
    pub workers: usize,
    /// Plan-cache capacity in entries.
    pub cache_capacity: usize,
    /// Result-cache capacity in entries.
    pub result_cache_capacity: usize,
    /// Result-cache byte budget (serialized response bodies).
    pub result_cache_bytes: usize,
    /// Bounded admission queue: requests waiting for a worker beyond
    /// this are answered `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// Per-request execution budget (admission → response). Exceeding
    /// it answers `504`; `None` disables deadlines.
    pub request_timeout: Option<Duration>,
    /// How long a connection may dribble an incomplete request before
    /// `408` + close (slow-loris defense).
    pub header_timeout: Duration,
    /// How long an idle keep-alive connection is retained.
    pub idle_timeout: Duration,
    /// Requests at least this slow always publish an execution trace to
    /// `/debug/traces` and the slow-query log. `Duration::ZERO` disables
    /// slow capture (traces then come only from sampling).
    pub slow_query: Duration,
    /// Finished-trace ring capacity (must be ≥ 1; [`Server::bind`]
    /// rejects 0 with a clear error instead of panicking later).
    pub trace_ring: usize,
    /// Probabilistic trace sampling: requests per 1024 that publish a
    /// trace even when fast. 0 (the default) keeps the steady-state hot
    /// path allocation-free and effectively zero-cost.
    pub trace_sample_per_1024: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: lbr::core::api::default_threads().max(2),
            cache_capacity: 256,
            result_cache_capacity: 256,
            result_cache_bytes: 64 * 1024 * 1024,
            queue_capacity: 256,
            request_timeout: Some(Duration::from_secs(30)),
            header_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            slow_query: Duration::from_millis(250),
            trace_ring: 256,
            trace_sample_per_1024: 0,
        }
    }
}

/// Shared per-server state; the [`lbr_net::Handler`] implementation.
struct Service {
    db: Arc<Database>,
    cache: PlanCache,
    results: ResultCache,
    agg: Mutex<StatsAggregate>,
    counters: Arc<NetCounters>,
    lat_sparql: LatencyHistogram,
    lat_update: LatencyHistogram,
    /// `/update` requests that committed (no-ops included).
    updates: AtomicU64,
    /// Triples actually inserted / deleted across all updates.
    update_inserted: AtomicU64,
    update_deleted: AtomicU64,
    /// Per-query execution tracing: slow-query capture + sampling,
    /// bounded ring of finished traces (`/debug/traces`).
    tracing: Arc<lbr_obs::Tracing>,
    /// Process start, for `uptime_secs` in `/healthz` and `/stats`.
    started: Instant,
}

/// A bound (but not yet serving) SPARQL endpoint.
pub struct Server {
    net: NetServer<Service>,
    service: Arc<Service>,
    workers: usize,
}

impl Server {
    /// Binds the endpoint. Use port `0` for an ephemeral port and read it
    /// back with [`Server::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: Arc<Database>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let counters = Arc::new(NetCounters::new());
        // A 0-capacity ring is a configuration error, surfaced at bind
        // time with a clear message instead of a panic mid-serve.
        let tracing = Arc::new(
            lbr_obs::Tracing::new(
                config.trace_ring,
                config.slow_query,
                config.trace_sample_per_1024,
            )
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?
            .with_slow_log(true),
        );
        let service = Arc::new(Service {
            db,
            cache: PlanCache::new(config.cache_capacity),
            results: ResultCache::new(config.result_cache_capacity, config.result_cache_bytes),
            agg: Mutex::new(StatsAggregate::default()),
            counters: Arc::clone(&counters),
            lat_sparql: LatencyHistogram::new(),
            lat_update: LatencyHistogram::new(),
            updates: AtomicU64::new(0),
            update_inserted: AtomicU64::new(0),
            update_deleted: AtomicU64::new(0),
            tracing: Arc::clone(&tracing),
            started: Instant::now(),
        });
        let workers = config.workers.max(1);
        let net_config = lbr_net::ServerConfig {
            workers,
            queue_capacity: config.queue_capacity,
            request_deadline: config.request_timeout,
            header_timeout: config.header_timeout,
            idle_timeout: config.idle_timeout,
            retry_after_secs: 1,
            tracing: Some(tracing),
        };
        let net = NetServer::bind(addr, Arc::clone(&service), net_config)?.with_counters(counters);
        Ok(Server {
            net,
            service,
            workers,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.net.local_addr()
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serves on the calling thread until [`ServerHandle`]-less shutdown
    /// (i.e. forever for the CLI binary).
    pub fn run(self) -> std::io::Result<()> {
        self.net.run()
    }

    /// Serves on background threads, returning a handle that stops the
    /// server when dropped — what tests and the bench harness use.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let service = Arc::clone(&self.service);
        let shutdown = self.net.shutdown_handle();
        let thread = std::thread::spawn(move || {
            let _ = self.net.run();
        });
        Ok(ServerHandle {
            addr,
            service,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// A running server (from [`Server::spawn`]); stops on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Shutdown,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Plan-cache counters (what `/stats` reports).
    pub fn cache_stats(&self) -> lbr::CacheStats {
        self.service.cache.stats()
    }

    /// Result-cache counters (what `/stats` reports).
    pub fn result_cache_stats(&self) -> lbr::ResultCacheStats {
        self.service.results.stats()
    }

    /// Aggregated query statistics (what `/stats` reports).
    pub fn query_stats(&self) -> StatsAggregate {
        self.service.agg.lock().expect("stats poisoned").clone()
    }

    /// Connection/admission counters maintained by the event loop.
    pub fn net_counters(&self) -> Arc<NetCounters> {
        Arc::clone(&self.service.counters)
    }

    /// The per-server trace store (slow-query capture + sampling).
    pub fn tracing(&self) -> Arc<lbr_obs::Tracing> {
        Arc::clone(&self.service.tracing)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.signal();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Handler for Service {
    fn handle(&self, request: Request, deadline: Option<Instant>) -> Response {
        let start = Instant::now();
        let response = self
            .respond(&request, deadline)
            .unwrap_or_else(|err| Response::from_error(&err));
        match request.path.as_str() {
            "/sparql" => self.lat_sparql.record(start.elapsed()),
            "/update" => self.lat_update.record(start.elapsed()),
            _ => {}
        }
        response
    }
}

impl Service {
    /// Routes one request to a complete, framed response.
    fn respond(&self, request: &Request, deadline: Option<Instant>) -> Result<Response, HttpError> {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Ok(Response::new(
                200,
                "application/json",
                self.healthz_json().into_bytes(),
            )),
            (_, "/healthz") => Err(HttpError::method_not_allowed("GET")),
            ("GET", "/stats") => Ok(Response::new(
                200,
                "application/json",
                self.stats_json().into_bytes(),
            )),
            (_, "/stats") => Err(HttpError::method_not_allowed("GET")),
            ("GET", "/metrics") => Ok(Response::new(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                self.exposition().render_prometheus().into_bytes(),
            )),
            (_, "/metrics") => Err(HttpError::method_not_allowed("GET")),
            ("GET", "/debug/traces") => Ok(Response::new(
                200,
                "application/json",
                lbr_obs::render_traces_json(&self.tracing.snapshot()).into_bytes(),
            )),
            (_, "/debug/traces") => Err(HttpError::method_not_allowed("GET")),
            ("GET", "/sparql") => {
                let (query, analyze) = query_from_get(request)?;
                if analyze {
                    return self.explain_analyze(&query);
                }
                self.execute(&query, request, deadline)
            }
            ("POST", "/sparql") => {
                let (query, analyze) = query_from_post(request)?;
                if analyze {
                    return self.explain_analyze(&query);
                }
                self.execute(&query, request, deadline)
            }
            (_, "/sparql") => Err(HttpError::method_not_allowed("GET, POST")),
            ("POST", "/update") => {
                let update = update_from_post(request)?;
                self.update(&update)
            }
            (_, "/update") => Err(HttpError::method_not_allowed("POST")),
            _ => Err(HttpError::new(
                404,
                format!(
                    "no such resource {}; the endpoints are /sparql and /update \
                     (plus /healthz, /stats, /metrics, /debug/traces)",
                    request.path
                ),
            )),
        }
    }

    /// `EXPLAIN ANALYZE` over HTTP (`explain=analyze`): executes the
    /// query and answers the annotated plan as plain text. Bypasses both
    /// caches on purpose — the whole point is a fresh, traced execution.
    fn explain_analyze(&self, query_text: &str) -> Result<Response, HttpError> {
        let rendered = self
            .db
            .explain_analyze(query_text)
            .map_err(|e| self.query_error(e))?;
        Ok(Response::text(200, rendered))
    }

    /// Executes a SPARQL query through the shared caches.
    ///
    /// Cache discipline: the query text is canonicalized **once**; the
    /// result cache is probed with `(canonical text, media type)` at the
    /// pinned view's epoch — a hit skips parsing, planning, execution
    /// and serialization. On a miss, the plan cache skips the front half
    /// and the serialized bytes are published for the next client.
    fn execute(
        &self,
        query_text: &str,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<Response, HttpError> {
        let format = negotiate(request.header("accept"))?;
        let media = format.media_type();
        // One pinned view serves the whole request: the cache probe, plan
        // validation, execution and result decoding all see the same
        // snapshot even if an update commits mid-request.
        let view = self.db.read();
        let key = lbr::canonicalize(query_text);
        if let Some(body) = self.results.get(&key, media, view.epoch()) {
            return Ok(Response::new(200, media, body.as_ref().clone()));
        }
        let cached = self
            .cache
            .get_or_prepare(&self.db, query_text)
            .map_err(|e| self.query_error(e))?;
        let output = view
            .execute_plan_deadline(&cached, deadline)
            .map_err(|e| self.query_error(e))?;
        self.agg
            .lock()
            .expect("stats poisoned")
            .record(&output.stats);
        let t_serialize = Instant::now();
        let rendered = format.render(cached.query(), &output, view.dict());
        lbr_obs::span_since(
            "serialize",
            t_serialize,
            &[("bytes", rendered.len() as u64)],
        );
        let body = Arc::new(rendered.into_bytes());
        self.results
            .insert(key, media, view.epoch(), Arc::clone(&body));
        Ok(Response::new(200, media, body.as_ref().clone()))
    }

    /// Executes a SPARQL 1.1 Update request and answers a small JSON
    /// summary. The whole request commits atomically (durably, when the
    /// store has a WAL) before the response is written; post-commit
    /// requests observe the new epoch, so stale cached results can never
    /// be served after the update's response.
    fn update(&self, update_text: &str) -> Result<Response, HttpError> {
        let outcome = self.db.update(update_text).map_err(update_error)?;
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.update_inserted
            .fetch_add(outcome.inserted, Ordering::Relaxed);
        self.update_deleted
            .fetch_add(outcome.deleted, Ordering::Relaxed);
        let body = format!(
            "{{\"inserted\":{},\"deleted\":{},\"epoch\":{}}}\n",
            outcome.inserted, outcome.deleted, outcome.epoch
        );
        Ok(Response::new(200, "application/json", body.into_bytes()))
    }

    fn query_error(&self, e: LbrError) -> HttpError {
        self.agg.lock().expect("stats poisoned").record_error();
        match e {
            // The client's query is at fault.
            LbrError::Sparql(_) | LbrError::Unsupported(_) => HttpError::new(400, e.to_string()),
            // The query outlived its budget.
            LbrError::DeadlineExceeded => HttpError::new(504, e.to_string()),
            // The server (or its configuration) is at fault.
            LbrError::BitMat(_) | LbrError::ResourceLimit(_) => HttpError::new(500, e.to_string()),
        }
    }

    /// `/healthz`: liveness plus build identity and uptime, as JSON.
    fn healthz_json(&self) -> String {
        let info = lbr_obs::build_info();
        format!(
            "{{\"status\":\"ok\",\"version\":\"{}\",\"git_hash\":\"{}\",\
             \"profile\":\"{}\",\"uptime_secs\":{}}}\n",
            info.version,
            info.git_hash,
            info.profile,
            self.started.elapsed().as_secs()
        )
    }

    /// The unified metric registry: **one** enumeration of every counter,
    /// gauge and histogram, rendered as the `/stats` JSON document (field
    /// insertion order is the document shape) and as the `/metrics`
    /// Prometheus text exposition (family grouping and escaping handled
    /// by [`lbr_obs::Exposition`]). Durations are integer microseconds on
    /// both surfaces (`_us`); `queries.t_total_ms` stays as the one
    /// legacy millisecond alias.
    fn exposition(&self) -> lbr_obs::Exposition {
        let cache = self.cache.stats();
        let results = self.results.stats();
        let agg = self.agg.lock().expect("stats poisoned").clone();
        let net = &self.counters;
        let mut x = lbr_obs::Exposition::new();
        let plan = || vec![("cache", "plan".to_string())];
        let result = || vec![("cache", "result".to_string())];

        x.counter_l(
            "lbr_cache_hits_total",
            plan(),
            "cache.hits",
            "Cache lookups answered from the cache.",
            cache.hits,
        );
        x.counter_l(
            "lbr_cache_misses_total",
            plan(),
            "cache.misses",
            "Cache lookups that had to do the work.",
            cache.misses,
        );
        x.counter_l(
            "lbr_cache_evictions_total",
            plan(),
            "cache.evictions",
            "Entries evicted to stay within capacity.",
            cache.evictions,
        );
        x.counter_l(
            "lbr_cache_epoch_evictions_total",
            plan(),
            "cache.epoch_evictions",
            "Entries dropped because an update moved the epoch.",
            cache.epoch_evictions,
        );
        x.gauge_l(
            "lbr_cache_entries",
            plan(),
            "cache.len",
            "Entries currently cached.",
            cache.len as u64,
        );
        x.gauge_l(
            "lbr_cache_capacity",
            plan(),
            "cache.capacity",
            "Maximum cache entries.",
            cache.capacity as u64,
        );

        x.counter_l(
            "lbr_cache_hits_total",
            result(),
            "result_cache.hits",
            "",
            results.hits,
        );
        x.counter_l(
            "lbr_cache_misses_total",
            result(),
            "result_cache.misses",
            "",
            results.misses,
        );
        x.counter_l(
            "lbr_cache_evictions_total",
            result(),
            "result_cache.evictions",
            "",
            results.evictions,
        );
        x.counter_l(
            "lbr_cache_epoch_evictions_total",
            result(),
            "result_cache.epoch_evictions",
            "",
            results.epoch_evictions,
        );
        x.gauge_l(
            "lbr_cache_entries",
            result(),
            "result_cache.len",
            "",
            results.len as u64,
        );
        x.gauge_l(
            "lbr_cache_capacity",
            result(),
            "result_cache.capacity",
            "",
            results.capacity as u64,
        );
        x.gauge(
            "lbr_result_cache_bytes",
            "result_cache.bytes",
            "Serialized bytes currently cached.",
            results.bytes,
        );
        x.gauge(
            "lbr_result_cache_max_bytes",
            "result_cache.max_bytes",
            "Result-cache byte budget.",
            results.max_bytes,
        );

        x.counter(
            "lbr_net_connections_total",
            "net.connections",
            "TCP connections accepted.",
            NetCounters::get(&net.connections_accepted),
        );
        x.counter(
            "lbr_net_requests_admitted_total",
            "net.admitted",
            "Requests admitted to the worker queue.",
            NetCounters::get(&net.requests_admitted),
        );
        x.counter(
            "lbr_net_requests_dropped_total",
            "net.dropped_requests",
            "Requests shed with 503 (queue full).",
            NetCounters::get(&net.requests_dropped),
        );
        x.counter(
            "lbr_net_requests_timed_out_total",
            "net.timed_out",
            "Connections timed out reading a request.",
            NetCounters::get(&net.requests_timed_out),
        );
        x.counter(
            "lbr_net_requests_malformed_total",
            "net.malformed",
            "Malformed requests answered 400.",
            NetCounters::get(&net.requests_malformed),
        );
        x.counter(
            "lbr_net_deadline_504s_total",
            "net.queue_504s",
            "Requests answered 504 (deadline exceeded).",
            NetCounters::get(&net.deadlines_exceeded),
        );
        x.gauge(
            "lbr_net_queue_depth",
            "net.queue_depth",
            "Requests waiting in the admission queue right now.",
            NetCounters::get(&net.queue_depth),
        );

        for (endpoint, hist) in [("sparql", &self.lat_sparql), ("update", &self.lat_update)] {
            let s = hist.summary();
            let (buckets, count, sum) = hist.cumulative_buckets();
            x.histogram(
                "lbr_request_duration_us",
                vec![("endpoint", endpoint.to_string())],
                "End-to-end request latency, microseconds.",
                lbr_obs::HistogramData {
                    buckets,
                    count,
                    sum,
                },
            );
            // JSON keeps the percentile summary shape (micros).
            let (c, p50, p95, p99, max) = match endpoint {
                "sparql" => (
                    "latency.sparql.count",
                    "latency.sparql.p50_us",
                    "latency.sparql.p95_us",
                    "latency.sparql.p99_us",
                    "latency.sparql.max_us",
                ),
                _ => (
                    "latency.update.count",
                    "latency.update.p50_us",
                    "latency.update.p95_us",
                    "latency.update.p99_us",
                    "latency.update.max_us",
                ),
            };
            x.json_u64(c, s.count);
            x.json_u64(p50, s.p50_micros);
            x.json_u64(p95, s.p95_micros);
            x.json_u64(p99, s.p99_micros);
            x.json_u64(max, s.max_micros);
        }

        x.counter(
            "lbr_queries_ok_total",
            "queries.ok",
            "Queries executed successfully.",
            agg.queries,
        );
        x.counter(
            "lbr_queries_errors_total",
            "queries.errors",
            "Queries that failed.",
            agg.errors,
        );
        x.counter(
            "lbr_query_rows_total",
            "queries.rows",
            "Result rows produced.",
            agg.rows,
        );
        x.counter(
            "lbr_query_rows_with_nulls_total",
            "queries.rows_with_nulls",
            "Result rows containing NULL bindings.",
            agg.rows_with_nulls,
        );
        x.counter(
            "lbr_queries_nb_required_total",
            "queries.nb_required",
            "Queries that needed nullification/best-match.",
            agg.nb_required_queries,
        );
        x.counter(
            "lbr_join_seeds_total",
            "queries.join_seeds",
            "Multi-way join seed rows.",
            agg.join_seeds,
        );
        x.counter(
            "lbr_prune_intersections_total",
            "queries.prune_intersections",
            "Compressed-set intersections during pruning.",
            agg.prune_intersections,
        );
        x.counter(
            "lbr_scratch_reuses_total",
            "queries.scratch_reuses",
            "Scratch-pool reuses (allocation-free executions).",
            agg.scratch_reuses,
        );
        let t_total_us = agg.t_total.as_micros() as u64;
        let avg_us = agg.avg_total().as_micros() as u64;
        x.counter(
            "lbr_query_duration_us_total",
            "queries.t_total_us",
            "Total query execution time, microseconds.",
            t_total_us,
        );
        x.json_u64("queries.avg_us", avg_us);
        // Legacy millisecond alias (documented; everything else is µs).
        x.json_f64("queries.t_total_ms", agg.t_total.as_secs_f64() * 1e3, 3);

        x.counter(
            "lbr_updates_requests_total",
            "updates.requests",
            "Update requests committed (no-ops included).",
            self.updates.load(Ordering::Relaxed),
        );
        x.counter(
            "lbr_updates_inserted_total",
            "updates.inserted",
            "Triples inserted across all updates.",
            self.update_inserted.load(Ordering::Relaxed),
        );
        x.counter(
            "lbr_updates_deleted_total",
            "updates.deleted",
            "Triples deleted across all updates.",
            self.update_deleted.load(Ordering::Relaxed),
        );

        x.json_text("database.engine", self.db.engine_kind().to_string());
        x.gauge(
            "lbr_store_triples",
            "database.triples",
            "Triples in the current snapshot.",
            self.db.len() as u64,
        );
        x.gauge(
            "lbr_worker_threads",
            "database.threads",
            "Engine worker threads.",
            self.db.threads() as u64,
        );
        x.gauge(
            "lbr_store_epoch",
            "database.epoch",
            "Storage epoch (0 = as loaded, +1 per commit).",
            self.db.epoch(),
        );
        x.bool_field(
            "lbr_database_updatable",
            "database.updatable",
            "Whether the database accepts updates.",
            self.db.mutable_store().is_some(),
        );

        if let Some(store) = self.db.mutable_store() {
            let obs = store.obs();
            x.counter(
                "lbr_store_wal_appends_total",
                "store.wal_appends",
                "WAL records appended.",
                obs.wal_appends,
            );
            x.counter(
                "lbr_store_compactions_total",
                "store.compactions",
                "Delta folds into fresh segments.",
                obs.compactions,
            );
            x.counter(
                "lbr_store_checkpoints_total",
                "store.checkpoints",
                "Checkpoint images written.",
                obs.checkpoints,
            );
        }

        x.counter(
            "lbr_traces_finished_total",
            "traces.finished",
            "Request traces finished (published or not).",
            self.tracing.finished(),
        );
        x.counter(
            "lbr_traces_published_total",
            "traces.published",
            "Request traces published to the ring.",
            self.tracing.published(),
        );
        x.gauge(
            "lbr_traces_retained",
            "traces.len",
            "Finished traces currently retained.",
            self.tracing.len() as u64,
        );
        x.gauge(
            "lbr_traces_capacity",
            "traces.capacity",
            "Finished-trace ring capacity.",
            self.tracing.capacity() as u64,
        );

        let info = lbr_obs::build_info();
        x.info(
            "lbr_build_info",
            "Build identity (constant 1; labels carry the identity).",
            vec![
                ("version", info.version.to_string()),
                ("git_hash", info.git_hash.to_string()),
                ("profile", info.profile.to_string()),
            ],
        );
        x.json_text("build_info.version", info.version.to_string());
        x.json_text("build_info.git_hash", info.git_hash.to_string());
        x.json_text("build_info.profile", info.profile.to_string());
        x.gauge(
            "lbr_uptime_seconds",
            "uptime_secs",
            "Seconds since the server started.",
            self.started.elapsed().as_secs(),
        );
        x
    }

    /// `/stats` as hand-rolled JSON, rendered from the same registry as
    /// `/metrics` (no serde in the build environment).
    fn stats_json(&self) -> String {
        let mut out = self.exposition().render_json();
        out.push('\n');
        out
    }
}

/// Reads the optional `explain` parameter from decoded form pairs: only
/// `explain=analyze` is defined (the EXPLAIN ANALYZE surface); any other
/// value is a 400 rather than being silently ignored.
fn explain_param(pairs: &[(String, String)]) -> Result<bool, HttpError> {
    match pairs
        .iter()
        .find(|(k, _)| k == "explain")
        .map(|(_, v)| v.as_str())
    {
        None => Ok(false),
        Some("analyze") => Ok(true),
        Some(other) => Err(HttpError::new(
            400,
            format!("unknown explain mode '{other}' (only 'analyze' is supported)"),
        )),
    }
}

/// Extracts the query (plus the `explain=analyze` flag) from a GET
/// request's query string (`?query=…`, percent-decoded with `+` as
/// space).
fn query_from_get(request: &Request) -> Result<(String, bool), HttpError> {
    let qs = request
        .query_string
        .as_deref()
        .ok_or_else(|| HttpError::new(400, "missing query string (?query=…)"))?;
    let pairs = parse_form(qs)?;
    let analyze = explain_param(&pairs)?;
    pairs
        .into_iter()
        .find(|(k, _)| k == "query")
        .map(|(_, v)| (v, analyze))
        .ok_or_else(|| HttpError::new(400, "missing 'query' parameter"))
}

/// Extracts the query (plus the `explain=analyze` flag, accepted as a
/// form field or a query-string parameter) from a POST body per its
/// `Content-Type`: the two SPARQL Protocol flavors are urlencoded forms
/// and raw `application/sparql-query`; anything else is 415.
fn query_from_post(request: &Request) -> Result<(String, bool), HttpError> {
    let qs_analyze = match request.query_string.as_deref() {
        Some(qs) => explain_param(&parse_form(qs)?)?,
        None => false,
    };
    match request.content_type().as_deref() {
        Some("application/x-www-form-urlencoded") => {
            let body = std::str::from_utf8(&request.body)
                .map_err(|_| HttpError::new(400, "form body is not UTF-8"))?;
            let pairs = parse_form(body)?;
            let analyze = qs_analyze || explain_param(&pairs)?;
            pairs
                .into_iter()
                .find(|(k, _)| k == "query")
                .map(|(_, v)| (v, analyze))
                .ok_or_else(|| HttpError::new(400, "missing 'query' form field"))
        }
        Some("application/sparql-query") => String::from_utf8(request.body.clone())
            .map(|q| (q, qs_analyze))
            .map_err(|_| HttpError::new(400, "query body is not UTF-8")),
        Some(other) => Err(HttpError::new(
            415,
            format!(
                "unsupported media type '{other}'; use application/x-www-form-urlencoded \
                 or application/sparql-query"
            ),
        )),
        None => Err(HttpError::new(
            415,
            "missing Content-Type; use application/x-www-form-urlencoded \
             or application/sparql-query",
        )),
    }
}

/// Extracts the update request from a POST body per its `Content-Type`:
/// the two SPARQL Protocol flavors are urlencoded forms (`update=…`) and
/// raw `application/sparql-update`; anything else is 415.
fn update_from_post(request: &Request) -> Result<String, HttpError> {
    match request.content_type().as_deref() {
        Some("application/x-www-form-urlencoded") => {
            let body = std::str::from_utf8(&request.body)
                .map_err(|_| HttpError::new(400, "form body is not UTF-8"))?;
            parse_form(body)?
                .into_iter()
                .find(|(k, _)| k == "update")
                .map(|(_, v)| v)
                .ok_or_else(|| HttpError::new(400, "missing 'update' form field"))
        }
        Some("application/sparql-update") => String::from_utf8(request.body.clone())
            .map_err(|_| HttpError::new(400, "update body is not UTF-8")),
        Some(other) => Err(HttpError::new(
            415,
            format!(
                "unsupported media type '{other}'; use application/x-www-form-urlencoded \
                 or application/sparql-update"
            ),
        )),
        None => Err(HttpError::new(
            415,
            "missing Content-Type; use application/x-www-form-urlencoded \
             or application/sparql-update",
        )),
    }
}

/// Maps an update failure to a protocol status: the client's request is
/// at fault for parse errors (400); updating a read-only database is
/// forbidden (403); evaluation errors split like query errors; a WAL
/// write failure is the server's problem (500).
fn update_error(e: UpdateError) -> HttpError {
    match e {
        UpdateError::Parse(_) => HttpError::new(400, e.to_string()),
        UpdateError::ReadOnly => HttpError::new(403, e.to_string()),
        UpdateError::Eval(LbrError::Sparql(_)) | UpdateError::Eval(LbrError::Unsupported(_)) => {
            HttpError::new(400, e.to_string())
        }
        UpdateError::Eval(_) | UpdateError::Store(_) => HttpError::new(500, e.to_string()),
    }
}

/// Content negotiation over `Accept`: first acceptable media range wins
/// (q-values are ignored — list order is the preference order).
/// No header, an empty header, or a wildcard selects the protocol
/// default, W3C SPARQL JSON. Unmatchable ranges are 406.
pub fn negotiate(accept: Option<&str>) -> Result<OutputFormat, HttpError> {
    let Some(accept) = accept else {
        return Ok(OutputFormat::Json);
    };
    let mut saw_any = false;
    for item in accept.split(',') {
        let media = item
            .split(';')
            .next()
            .unwrap_or("")
            .trim()
            .to_ascii_lowercase();
        if media.is_empty() {
            continue;
        }
        saw_any = true;
        match media.as_str() {
            "application/sparql-results+json" | "application/json" => {
                return Ok(OutputFormat::Json)
            }
            "text/tab-separated-values" => return Ok(OutputFormat::Tsv),
            "text/plain" => return Ok(OutputFormat::Table),
            "*/*" | "application/*" => return Ok(OutputFormat::Json),
            "text/*" => return Ok(OutputFormat::Tsv),
            _ => continue,
        }
    }
    if !saw_any {
        return Ok(OutputFormat::Json);
    }
    Err(HttpError::new(
        406,
        format!(
            "no acceptable representation for '{accept}'; offered: \
             application/sparql-results+json, text/tab-separated-values, text/plain"
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr::parse_query;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    const DATA: &str = r#"
        <Jerry> <hasFriend> <Julia> .
        <Jerry> <hasFriend> <Larry> .
        <Julia> <actedIn> <Seinfeld> .
        <Seinfeld> <location> <NewYorkCity> .
    "#;

    fn serve() -> ServerHandle {
        let db = Arc::new(Database::from_ntriples(DATA).unwrap());
        let config = ServerConfig {
            workers: 4,
            cache_capacity: 8,
            ..ServerConfig::default()
        };
        Server::bind("127.0.0.1:0", db, config)
            .unwrap()
            .spawn()
            .unwrap()
    }

    /// Reads one `Content-Length`-framed response off `stream` (plus a
    /// small carry so pipelined responses split correctly), returning
    /// (status, head, body).
    fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
        let mut chunk = [0u8; 8192];
        let head_end = loop {
            if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "connection closed before response head");
            carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(carry[..head_end - 4].to_vec()).unwrap();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("framed response")
            .parse()
            .unwrap();
        while carry.len() < head_end + len {
            let n = stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            carry.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(carry[head_end..head_end + len].to_vec()).unwrap();
        carry.drain(..head_end + len);
        (status, head, body)
    }

    /// Sends one raw HTTP request on a fresh connection; returns
    /// (status, headers, body).
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        read_framed(&mut stream, &mut Vec::new())
    }

    fn get(addr: SocketAddr, target: &str, accept: Option<&str>) -> (u16, String, String) {
        let accept_line = accept.map_or(String::new(), |a| format!("Accept: {a}\r\n"));
        roundtrip(
            addr,
            &format!("GET {target} HTTP/1.1\r\nHost: t\r\n{accept_line}\r\n"),
        )
    }

    fn post(addr: SocketAddr, content_type: Option<&str>, body: &str) -> (u16, String, String) {
        let ct = content_type.map_or(String::new(), |c| format!("Content-Type: {c}\r\n"));
        roundtrip(
            addr,
            &format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\n{ct}Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    const QUERY: &str = "SELECT * WHERE { <Jerry> <hasFriend> ?friend . } ORDER BY ?friend";
    const QUERY_ENC: &str =
        "SELECT+*+WHERE+%7B+%3CJerry%3E+%3ChasFriend%3E+%3Ffriend+.+%7D+ORDER+BY+%3Ffriend";

    fn expected(format: OutputFormat) -> String {
        let db = Database::from_ntriples(DATA).unwrap();
        let q = parse_query(QUERY).unwrap();
        let out = db.execute_query(&q).unwrap();
        format.render(&q, &out, db.dict())
    }

    #[test]
    fn get_query_answers_w3c_json() {
        let server = serve();
        let (status, head, body) = get(server.addr(), &format!("/sparql?query={QUERY_ENC}"), None);
        assert_eq!(status, 200, "{body}");
        assert!(
            head.contains("Content-Type: application/sparql-results+json"),
            "{head}"
        );
        assert_eq!(body, expected(OutputFormat::Json));
    }

    #[test]
    fn keep_alive_reuses_one_connection_byte_identical_to_cli() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut carry = Vec::new();
        let oracle = expected(OutputFormat::Json);
        // Ten requests over ONE connection; every response framed,
        // keep-alive, and byte-identical to the CLI's serialization.
        for _ in 0..10 {
            write!(
                stream,
                "GET /sparql?query={QUERY_ENC} HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            .unwrap();
            let (status, head, body) = read_framed(&mut stream, &mut carry);
            assert_eq!(status, 200, "{body}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
            assert_eq!(body, oracle);
        }
        // One TCP connection total.
        assert_eq!(
            NetCounters::get(&server.net_counters().connections_accepted),
            1
        );
    }

    #[test]
    fn pipelined_queries_answered_in_order() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut carry = Vec::new();
        // Two different queries plus /healthz, all on the wire at once.
        let ask = "ASK+%7B+%3CJerry%3E+%3ChasFriend%3E+%3Ff+.+%7D";
        write!(
            stream,
            "GET /sparql?query={QUERY_ENC} HTTP/1.1\r\n\r\n\
             GET /sparql?query={ask} HTTP/1.1\r\n\r\n\
             GET /healthz HTTP/1.1\r\n\r\n"
        )
        .unwrap();
        let (s1, _, b1) = read_framed(&mut stream, &mut carry);
        let (s2, _, b2) = read_framed(&mut stream, &mut carry);
        let (s3, _, b3) = read_framed(&mut stream, &mut carry);
        assert_eq!((s1, s2, s3), (200, 200, 200));
        assert_eq!(b1, expected(OutputFormat::Json));
        assert_eq!(b2, "{\"head\":{},\"boolean\":true}\n");
        assert!(b3.contains("\"status\":\"ok\""), "{b3}");
    }

    #[test]
    fn post_both_flavors_match_get() {
        let server = serve();
        let (status, _, body) = post(
            server.addr(),
            Some("application/x-www-form-urlencoded"),
            &format!("query={QUERY_ENC}"),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected(OutputFormat::Json));

        let (status, _, body) = post(server.addr(), Some("application/sparql-query"), QUERY);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected(OutputFormat::Json));
    }

    #[test]
    fn accept_negotiation_selects_tsv_and_table() {
        let server = serve();
        let target = format!("/sparql?query={QUERY_ENC}");
        let (status, head, body) = get(server.addr(), &target, Some("text/tab-separated-values"));
        assert_eq!(status, 200);
        assert!(
            head.contains("Content-Type: text/tab-separated-values"),
            "{head}"
        );
        assert_eq!(body, expected(OutputFormat::Tsv));

        let (status, _, body) = get(server.addr(), &target, Some("text/plain"));
        assert_eq!(status, 200);
        assert_eq!(body, expected(OutputFormat::Table));

        // q-values and params are tolerated; first acceptable range wins.
        let (status, _, body) = get(
            server.addr(),
            &target,
            Some("application/xml, application/sparql-results+json;q=0.9"),
        );
        assert_eq!(status, 200);
        assert_eq!(body, expected(OutputFormat::Json));
    }

    #[test]
    fn ask_boolean_over_http() {
        let server = serve();
        let (status, _, body) = get(
            server.addr(),
            "/sparql?query=ASK+%7B+%3CJerry%3E+%3ChasFriend%3E+%3Ff+.+%7D",
            None,
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "{\"head\":{},\"boolean\":true}\n");
    }

    #[test]
    fn status_codes() {
        let server = serve();
        let addr = server.addr();
        // 400: malformed escape, missing parameter, bad SPARQL.
        assert_eq!(get(addr, "/sparql?query=%G1", None).0, 400);
        assert_eq!(get(addr, "/sparql?query=SELECT%20WHERE%20%7B", None).0, 400);
        assert_eq!(get(addr, "/sparql?other=1", None).0, 400);
        assert_eq!(get(addr, "/sparql", None).0, 400);
        // 404: unknown path.
        assert_eq!(get(addr, "/nope", None).0, 404);
        // 405: wrong method, with Allow.
        let (status, head, _) = roundtrip(addr, "PUT /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
        assert!(head.contains("Allow: GET, POST"), "{head}");
        let (status, _, _) = roundtrip(
            addr,
            "POST /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 405);
        // 406: unmatchable Accept.
        assert_eq!(
            get(
                addr,
                &format!("/sparql?query={QUERY_ENC}"),
                Some("application/xml")
            )
            .0,
            406
        );
        // 411: POST without Content-Length (framing error: closes).
        let (status, head, _) = roundtrip(addr, "POST /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 411);
        assert!(head.contains("Connection: close"), "{head}");
        // 415: POST with the wrong media type.
        assert_eq!(post(addr, Some("text/turtle"), QUERY).0, 415);
        assert_eq!(post(addr, None, QUERY).0, 415);
    }

    #[test]
    fn malformed_bytes_answered_400_and_closed() {
        let server = serve();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut carry = Vec::new();
        // A valid pipelined request followed by garbage: the query is
        // answered, the garbage draws 400 and the connection closes.
        write!(
            stream,
            "GET /healthz HTTP/1.1\r\n\r\n\x02\x03 not http\r\n\r\n"
        )
        .unwrap();
        let (s1, _, b1) = read_framed(&mut stream, &mut carry);
        assert_eq!(s1, 200);
        assert!(b1.contains("\"status\":\"ok\""), "{b1}");
        let (s2, head, _) = read_framed(&mut stream, &mut carry);
        assert_eq!(s2, 400);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(
            NetCounters::get(&server.net_counters().requests_malformed),
            1
        );
    }

    #[test]
    fn healthz_and_stats_with_cache_hits() {
        let server = serve();
        let addr = server.addr();
        let (status, _, body) = get(addr, "/healthz", None);
        assert_eq!(status, 200);
        // Liveness plus build identity and uptime (satellite surface).
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"version\":\""), "{body}");
        assert!(body.contains("\"git_hash\":\""), "{body}");
        assert!(body.contains("\"uptime_secs\":"), "{body}");

        // Two identical queries: the first executes (plan-cache miss),
        // the second is answered from the result cache without touching
        // the plan cache or the engine. An error increments the error
        // counter but never either cache.
        let target = format!("/sparql?query={QUERY_ENC}");
        assert_eq!(get(addr, &target, None).0, 200);
        assert_eq!(get(addr, &target, None).0, 200);
        assert_eq!(get(addr, "/sparql?query=NONSENSE", None).0, 400);

        let (status, head, body) = get(addr, "/stats", None);
        assert_eq!(status, 200);
        assert!(head.contains("Content-Type: application/json"), "{head}");
        // The bad query probed the result cache too (the probe precedes
        // parsing — that's what lets a hit skip the parser entirely).
        assert!(
            body.contains("\"result_cache\":{\"hits\":1,\"misses\":2"),
            "{body}"
        );
        assert!(body.contains("\"dropped_requests\":0"), "{body}");
        assert!(
            body.contains("\"latency\":{\"sparql\":{\"count\":3"),
            "{body}"
        );
        assert!(body.contains("\"ok\":1"), "{body}");
        assert!(body.contains("\"errors\":1"), "{body}");
        assert!(body.contains("\"rows\":2"), "{body}"); // 1 execution × 2 friends

        // Kernel observability: the prune phase ran compressed-set
        // intersections and the scratch pools were reused.
        assert!(body.contains("\"prune_intersections\":"), "{body}");
        assert!(body.contains("\"scratch_reuses\":"), "{body}");
        // The result hit skipped the plan cache: 1 miss, 0 hits.
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let results = server.result_cache_stats();
        assert_eq!((results.hits, results.misses), (1, 2));
        assert_eq!(server.query_stats().queries, 1);
    }

    #[test]
    fn concurrent_clients_all_get_oracle_answers() {
        let server = serve();
        let addr = server.addr();
        let json = expected(OutputFormat::Json);
        let tsv = expected(OutputFormat::Tsv);
        std::thread::scope(|scope| {
            for i in 0..8 {
                let (json, tsv) = (&json, &tsv);
                scope.spawn(move || {
                    for round in 0..6 {
                        if (i + round) % 2 == 0 {
                            let (status, _, body) =
                                get(addr, &format!("/sparql?query={QUERY_ENC}"), None);
                            assert_eq!((status, body.as_str()), (200, json.as_str()));
                        } else {
                            let (status, _, body) = get(
                                addr,
                                &format!("/sparql?query={QUERY_ENC}"),
                                Some("text/tab-separated-values"),
                            );
                            assert_eq!((status, body.as_str()), (200, tsv.as_str()));
                        }
                    }
                });
            }
        });
        // Every request probed the result cache exactly once; each miss
        // went on to probe the plan cache exactly once.
        let results = server.result_cache_stats();
        assert_eq!(results.hits + results.misses, 48);
        assert!(results.hits >= 40, "{results:?}"); // one canonical query × 2 formats
        let stats = server.cache_stats();
        assert_eq!(stats.hits + stats.misses, results.misses);
        assert_eq!(server.query_stats().queries, results.misses);
    }

    fn serve_updatable() -> ServerHandle {
        let db = Arc::new(
            Database::builder()
                .ntriples(DATA)
                .updatable()
                .build()
                .unwrap(),
        );
        let config = ServerConfig {
            workers: 4,
            cache_capacity: 8,
            ..ServerConfig::default()
        };
        Server::bind("127.0.0.1:0", db, config)
            .unwrap()
            .spawn()
            .unwrap()
    }

    fn post_update(addr: SocketAddr, body: &str) -> (u16, String, String) {
        let ct = "Content-Type: application/sparql-update\r\n";
        roundtrip(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\n{ct}Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn update_endpoint_inserts_and_deletes() {
        let server = serve_updatable();
        let addr = server.addr();
        let ask = "/sparql?query=ASK+%7B+%3CKramer%3E+%3ChasFriend%3E+%3Ff+.+%7D";

        // Warm both caches on the pre-update snapshot.
        assert!(get(addr, ask, None).2.contains("false"));
        assert!(get(addr, ask, None).2.contains("false"));

        // INSERT DATA: committed and immediately queryable.
        let (status, head, body) =
            post_update(addr, "INSERT DATA { <Kramer> <hasFriend> <Jerry> }");
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("Content-Type: application/json"), "{head}");
        assert_eq!(body, "{\"inserted\":1,\"deleted\":0,\"epoch\":1}\n");
        assert!(get(addr, ask, None).2.contains("true"), "insert visible");

        // DELETE WHERE: the pattern's instantiations are removed.
        let (status, _, body) = post_update(addr, "DELETE WHERE { <Kramer> <hasFriend> ?who }");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "{\"inserted\":0,\"deleted\":1,\"epoch\":2}\n");
        assert!(get(addr, ask, None).2.contains("false"), "delete visible");

        // The form flavor works too, and a no-op delete leaves the epoch.
        let form = "update=DELETE+DATA+%7B+%3CKramer%3E+%3ChasFriend%3E+%3CJerry%3E+%7D";
        let (status, _, body) = roundtrip(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: \
                 application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{form}",
                form.len()
            ),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "{\"inserted\":0,\"deleted\":0,\"epoch\":2}\n");

        // /stats: update counters, the bumped epoch, and the epoch
        // evictions the post-update queries caused in BOTH caches.
        let (_, _, stats) = get(addr, "/stats", None);
        assert!(
            stats.contains("\"updates\":{\"requests\":3,\"inserted\":1,\"deleted\":1}"),
            "{stats}"
        );
        assert!(stats.contains("\"epoch\":2"), "{stats}");
        assert!(stats.contains("\"updatable\":true"), "{stats}");
        assert!(
            server.cache_stats().epoch_evictions >= 1,
            "stale plans dropped"
        );
        assert!(
            server.result_cache_stats().epoch_evictions >= 1,
            "stale results dropped"
        );
    }

    #[test]
    fn result_cache_invalidated_by_first_post_update_request() {
        let server = serve_updatable();
        let addr = server.addr();
        let target = format!("/sparql?query={QUERY_ENC}");

        // Warm: miss then hit, same bytes.
        let (_, _, before1) = get(addr, &target, None);
        let (_, _, before2) = get(addr, &target, None);
        assert_eq!(before1, before2);
        assert_eq!(server.result_cache_stats().hits, 1);

        // Commit an update that changes this query's answer.
        let (status, _, _) = post_update(addr, "INSERT DATA { <Jerry> <hasFriend> <Kramer> }");
        assert_eq!(status, 200);

        // The FIRST post-update request must see fresh results: the
        // store epoch moved, so the cached entry is evicted, the query
        // re-executes, and the new friend appears.
        let (status, _, after) = get(addr, &target, None);
        assert_eq!(status, 200);
        assert_ne!(after, before1, "stale cached bytes served after update");
        assert!(after.contains("Kramer"), "{after}");
        assert_eq!(server.result_cache_stats().epoch_evictions, 1);

        // And the fresh result is itself cached again.
        let (_, _, again) = get(addr, &target, None);
        assert_eq!(again, after);
        assert_eq!(server.result_cache_stats().hits, 2);
    }

    #[test]
    fn update_against_read_only_database_is_403() {
        let server = serve();
        let (status, _, body) = post_update(server.addr(), "INSERT DATA { <x> <y> <z> }");
        assert_eq!(status, 403, "{body}");
        assert!(body.contains("read-only"), "{body}");
        // Nothing changed; stats still reports a fixed epoch-0 database.
        let (_, _, stats) = get(server.addr(), "/stats", None);
        assert!(stats.contains("\"updatable\":false"), "{stats}");
    }

    #[test]
    fn update_status_codes() {
        let server = serve_updatable();
        let addr = server.addr();
        // 400: malformed update.
        assert_eq!(post_update(addr, "INSERT NONSENSE").0, 400);
        // 405: wrong method, with Allow.
        let (status, head, _) = roundtrip(addr, "GET /update HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
        assert!(head.contains("Allow: POST"), "{head}");
        // 415: wrong media type (a query content type is not an update).
        let (status, _, _) = roundtrip(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: \
                 application/sparql-query\r\nContent-Length: {}\r\n\r\nASK {{}}",
                "ASK {}".len()
            ),
        );
        assert_eq!(status, 415);
    }

    /// A chain graph big enough that a multi-hop join takes real time —
    /// the fixture for the deadline and overload tests.
    fn heavy_db() -> Arc<Database> {
        use std::fmt::Write as _;
        let n = 200_000;
        let mut nt = String::with_capacity(n * 24);
        for i in 0..n {
            let _ = writeln!(nt, "<n{}> <next> <n{}> .", i, i + 1);
        }
        Arc::new(Database::from_ntriples(&nt).unwrap())
    }

    const HEAVY_QUERY: &str = "/sparql?query=SELECT+*+WHERE+%7B+%3Fa+%3Cnext%3E+%3Fb+.+\
                               %3Fb+%3Cnext%3E+%3Fc+.+%3Fc+%3Cnext%3E+%3Fd+.+%7D+ORDER+BY+%3Fd";

    #[test]
    fn deadline_exceeded_mid_query_answered_504() {
        let config = ServerConfig {
            workers: 2,
            request_timeout: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", heavy_db(), config)
            .unwrap()
            .spawn()
            .unwrap();
        // 1ms budget against a 200k-row three-hop join + sort: the
        // deadline fires (in the queue or inside the join kernels) and
        // the client gets 504, not a stalled socket.
        let (status, _, body) = get(server.addr(), HEAVY_QUERY, None);
        assert_eq!(status, 504, "{body}");
        assert!(
            body.contains("deadline") || body.contains("timed out"),
            "{body}"
        );
    }

    #[test]
    fn no_deadline_heavy_query_completes() {
        let config = ServerConfig {
            workers: 2,
            request_timeout: None,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", heavy_db(), config)
            .unwrap()
            .spawn()
            .unwrap();
        let (status, _, body) = get(server.addr(), HEAVY_QUERY, None);
        assert_eq!(status, 200, "{body}");
    }

    #[test]
    fn overloaded_server_sheds_with_503_retry_after() {
        let config = ServerConfig {
            workers: 1,
            queue_capacity: 1,
            request_timeout: None,
            // Distinct-looking queries below defeat the result cache so
            // every request really executes.
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", heavy_db(), config)
            .unwrap()
            .spawn()
            .unwrap();
        let addr = server.addr();

        // Occupy the single worker and the single queue slot with heavy
        // queries (comments make the texts distinct, so no cache hits),
        // then observe the third request shed inline.
        let heavy = |tag: u32| {
            format!(
                "/sparql?query=%23{tag}%0ASELECT+*+WHERE+%7B+%3Fa+%3Cnext%3E+%3Fb+.+\
                 %3Fb+%3Cnext%3E+%3Fc+.+%3Fc+%3Cnext%3E+%3Fd+.+%7D+ORDER+BY+%3Fd"
            )
        };
        std::thread::scope(|scope| {
            // Stagger the sends: the first heavy query must reach the
            // worker before the second occupies the lone queue slot, and
            // both must be in place before the probe arrives.
            for tag in 0..2u32 {
                let heavy = &heavy;
                scope.spawn(move || {
                    let (status, _, body) = get(addr, &heavy(tag), None);
                    assert_eq!(status, 200, "{body}");
                });
                std::thread::sleep(Duration::from_millis(150));
            }
            let (status, head, _) = get(addr, &heavy(9), None);
            assert_eq!(status, 503, "expected the third request shed");
            assert!(head.contains("Retry-After:"), "{head}");
        });
        assert_eq!(NetCounters::get(&server.net_counters().requests_dropped), 1);
        // /stats carries the drop.
        let (_, _, stats) = get(addr, "/stats", None);
        assert!(stats.contains("\"dropped_requests\":1"), "{stats}");
    }

    #[test]
    fn metrics_exposition_is_valid_prometheus_and_covers_every_layer() {
        let server = serve();
        let addr = server.addr();
        // Exercise engine + caches so counters are non-zero.
        let target = format!("/sparql?query={QUERY_ENC}");
        assert_eq!(get(addr, &target, None).0, 200);
        assert_eq!(get(addr, &target, None).0, 200);

        let (status, head, body) = get(addr, "/metrics", None);
        assert_eq!(status, 200);
        assert!(head.contains("Content-Type: text/plain"), "{head}");
        // The server's own linter accepts its own exposition.
        let report = lbr_obs::lint_exposition(&body)
            .unwrap_or_else(|errs| panic!("invalid exposition: {errs:?}\n{body}"));
        assert!(report.families >= 20, "{report:?}");
        // One family per layer: engine, caches, net, latency histogram,
        // traces, identity.
        // The repeat request was answered by the result cache (and so
        // never reached the plan cache); both appear as one family.
        assert!(
            body.contains("lbr_cache_hits_total{cache=\"plan\"} 0"),
            "{body}"
        );
        assert!(
            body.contains("lbr_cache_hits_total{cache=\"result\"} 1"),
            "{body}"
        );
        assert!(body.contains("lbr_net_connections_total"), "{body}");
        assert!(
            body.contains("lbr_request_duration_us_bucket{endpoint=\"sparql\",le=\"+Inf\"}"),
            "{body}"
        );
        assert!(body.contains("lbr_queries_ok_total 1"), "{body}");
        assert!(body.contains("lbr_store_epoch 0"), "{body}");
        assert!(body.contains("lbr_build_info{version=\""), "{body}");
        assert!(body.contains("lbr_uptime_seconds"), "{body}");
        // Zero-observation histogram still renders a complete family.
        assert!(
            body.contains("lbr_request_duration_us_count{endpoint=\"update\"} 0"),
            "{body}"
        );
        // /metrics itself is not a query endpoint.
        assert_eq!(get(addr, "/metrics", None).0, 200);
        let (status, _, _) = roundtrip(
            addr,
            "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, 405);
    }

    #[test]
    fn slow_queries_publish_traces_with_response_header() {
        let db = Arc::new(Database::from_ntriples(DATA).unwrap());
        let config = ServerConfig {
            workers: 2,
            // Everything is "slow" at a 1µs threshold: every request
            // publishes a trace and advertises its id.
            slow_query: Duration::from_micros(1),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", db, config)
            .unwrap()
            .spawn()
            .unwrap();
        let addr = server.addr();
        let (status, head, _) = get(addr, &format!("/sparql?query={QUERY_ENC}"), None);
        assert_eq!(status, 200);
        assert!(head.contains("X-Lbr-Trace-Id: "), "{head}");

        let (status, _, body) = get(addr, "/debug/traces", None);
        assert_eq!(status, 200);
        assert!(body.contains("\"label\":\"GET /sparql\""), "{body}");
        assert!(body.contains("\"slow\":true"), "{body}");
        // The trace carries wire + engine + serialization spans.
        for span in ["queue_wait", "parse", "plan", "join", "serialize"] {
            assert!(
                body.contains(&format!("\"name\":\"{span}\"")),
                "missing {span}: {body}"
            );
        }
        assert!(server.tracing().published() >= 1);

        // /stats carries the trace counters from the same registry.
        let (_, _, stats) = get(addr, "/stats", None);
        assert!(stats.contains("\"traces\":{"), "{stats}");
        assert!(stats.contains("\"published\":"), "{stats}");
    }

    #[test]
    fn fast_requests_with_default_config_carry_no_trace_header() {
        let server = serve();
        let (status, head, _) = get(server.addr(), &format!("/sparql?query={QUERY_ENC}"), None);
        assert_eq!(status, 200);
        // Default: 250ms slow threshold, sampling off — a microsecond
        // query publishes nothing and pays (almost) nothing.
        assert!(!head.contains("X-Lbr-Trace-Id"), "{head}");
        assert_eq!(server.tracing().published(), 0);
    }

    #[test]
    fn explain_analyze_over_http() {
        let server = serve();
        let addr = server.addr();
        let (status, head, body) = get(
            addr,
            &format!("/sparql?query={QUERY_ENC}&explain=analyze"),
            None,
        );
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("Content-Type: text/plain"), "{head}");
        assert!(body.contains("══ ANALYZE (executed) ══"), "{body}");
        assert!(body.contains("est≈"), "{body}");
        assert!(body.contains("err="), "{body}");
        // Unknown explain modes are a client error, not silently ignored.
        let (status, _, body) = get(
            addr,
            &format!("/sparql?query={QUERY_ENC}&explain=verbose"),
            None,
        );
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("unknown explain mode"), "{body}");
    }

    #[test]
    fn zero_capacity_trace_ring_is_rejected_at_bind() {
        let db = Arc::new(Database::from_ntriples(DATA).unwrap());
        let config = ServerConfig {
            trace_ring: 0,
            ..ServerConfig::default()
        };
        let err = match Server::bind("127.0.0.1:0", db, config) {
            Ok(_) => panic!("bind accepted a zero-capacity trace ring"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("trace ring capacity"), "{err}");
    }

    #[test]
    fn negotiation_unit_cases() {
        assert_eq!(negotiate(None).unwrap(), OutputFormat::Json);
        assert_eq!(negotiate(Some("")).unwrap(), OutputFormat::Json);
        assert_eq!(negotiate(Some("*/*")).unwrap(), OutputFormat::Json);
        assert_eq!(negotiate(Some("text/*")).unwrap(), OutputFormat::Tsv);
        assert_eq!(
            negotiate(Some("Application/Sparql-Results+JSON")).unwrap(),
            OutputFormat::Json
        );
        assert_eq!(
            negotiate(Some("application/xml, text/plain;q=0.2")).unwrap(),
            OutputFormat::Table
        );
        assert_eq!(negotiate(Some("application/xml")).unwrap_err().status, 406);
    }
}
