//! A minimal HTTP/1.1 layer over `std::io` — exactly what the SPARQL
//! Protocol needs, nothing more.
//!
//! No external dependencies: request parsing (request line, headers, a
//! `Content-Length`-delimited body), percent-decoding with
//! `+`-as-space, `application/x-www-form-urlencoded` parsing, and
//! response-head writing. Responses are `Connection: close` — bodies
//! stream until the socket closes, so a large result set needs no
//! `Content-Length` (and no chunked framing) and is never materialized.
//!
//! Every malformed input maps to a typed [`HttpError`] carrying the
//! status code the handler should answer with; nothing in this module
//! panics on attacker-controlled bytes.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line / header line, in bytes.
const MAX_LINE: usize = 64 * 1024;
/// Most accepted header lines.
const MAX_HEADERS: usize = 128;
/// Largest accepted request body (a POSTed query), in bytes.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// A request-handling failure with the HTTP status it maps to.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with (400, 405, 406, 411, 413, 415, …).
    pub status: u16,
    /// Human-readable detail (becomes the plain-text error body).
    pub message: String,
    /// Value for the `Allow` header (405 responses).
    pub allow: Option<&'static str>,
}

impl HttpError {
    /// An error with the given status and message.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
            allow: None,
        }
    }

    /// A 405 carrying the `Allow` header value.
    pub fn method_not_allowed(allow: &'static str) -> HttpError {
        HttpError {
            status: 405,
            message: format!("method not allowed; allowed: {allow}"),
            allow: Some(allow),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            reason(self.status),
            self.message
        )
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        411 => "Length Required",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before `?`), undecoded.
    pub path: String,
    /// Raw query string (after `?`), undecoded; `None` when absent.
    pub query_string: Option<String>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-delimited body (empty when none).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Content-Type`, lower-cased with any `;` parameters (charset…)
    /// stripped.
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let available = reader
            .fill_buf()
            .map_err(|e| HttpError::new(400, format!("read failed: {e}")))?;
        if available.is_empty() {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                buf.extend_from_slice(&available[..i]);
                reader.consume(i + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return String::from_utf8(buf)
                    .map_err(|_| HttpError::new(400, "non-UTF-8 bytes in request head"));
            }
            None => {
                let n = available.len();
                buf.extend_from_slice(available);
                reader.consume(n);
            }
        }
        if buf.len() > MAX_LINE {
            return Err(HttpError::new(400, "request line or header too long"));
        }
    }
}

/// Reads and parses one request from the stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("unsupported version {version}"),
        ));
    }
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(400, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path,
        query_string,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .trim()
            .parse()
            .map_err(|_| HttpError::new(400, "invalid Content-Length"))?;
        if len > MAX_BODY {
            return Err(HttpError::new(413, "request body too large"));
        }
        let mut body = vec![0u8; len];
        io::Read::read_exact(reader, &mut body)
            .map_err(|e| HttpError::new(400, format!("short body: {e}")))?;
        request.body = body;
    } else if request.method == "POST" {
        // No chunked-transfer support; POSTs must declare their length.
        return Err(HttpError::new(411, "POST requires Content-Length"));
    }
    Ok(request)
}

/// Percent-decodes `s`. With `plus_as_space` (query strings and
/// urlencoded form bodies) a literal `+` decodes to a space; `%2B` is the
/// escaped plus either way. Malformed escapes (`%`, `%2`, `%GZ`) and
/// non-UTF-8 decoded bytes are errors — the handler answers 400, never
/// panics.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let (Some(&hi), Some(&lo)) = (bytes.get(i + 1), bytes.get(i + 2)) else {
                    return Err(HttpError::new(400, "truncated percent escape"));
                };
                let (Some(hi), Some(lo)) = ((hi as char).to_digit(16), (lo as char).to_digit(16))
                else {
                    return Err(HttpError::new(
                        400,
                        format!("invalid percent escape %{}{}", hi as char, lo as char),
                    ));
                };
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::new(400, "percent-decoded bytes are not UTF-8"))
}

/// Parses an `application/x-www-form-urlencoded` document (or a URL query
/// string) into decoded `(key, value)` pairs. Empty segments (`a=1&&b=2`)
/// are skipped; a segment without `=` becomes a key with an empty value.
pub fn parse_form(s: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut pairs = Vec::new();
    for segment in s.split('&') {
        if segment.is_empty() {
            continue;
        }
        let (k, v) = segment.split_once('=').unwrap_or((segment, ""));
        pairs.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(pairs)
}

/// Writes a response head: status line, `Content-Type`,
/// `Connection: close`, optional extra headers, blank line. The body
/// follows on the same writer and ends when the connection closes.
pub fn write_head(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    w.write_all(b"Connection: close\r\n")?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")
}

/// Writes a complete plain-text response (used for errors, `/healthz`).
pub fn write_text(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_head(
        w,
        status,
        "text/plain; charset=utf-8",
        &[("Content-Length", &body.len().to_string())],
    )?;
    w.write_all(body.as_bytes())
}

/// Writes a complete error response from an [`HttpError`].
pub fn write_error(w: &mut impl Write, err: &HttpError) -> io::Result<()> {
    let body = format!("{}\n", err.message);
    let len = body.len().to_string();
    let mut extra: Vec<(&str, &str)> = vec![("Content-Length", &len)];
    if let Some(allow) = err.allow {
        extra.push(("Allow", allow));
    }
    write_head(w, err.status, "text/plain; charset=utf-8", &extra)?;
    w.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query_string() {
        let r = parse("GET /sparql?query=SELECT%20*&x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/sparql");
        assert_eq!(r.query_string.as_deref(), Some("query=SELECT%20*&x=1"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.header("HOST"), Some("h"));
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r = parse("POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.body, b"hello");
        assert_eq!(
            r.content_type().as_deref(),
            Some("application/sparql-query")
        );
    }

    #[test]
    fn content_type_params_stripped() {
        let r = parse("POST / HTTP/1.1\r\nContent-Type: Application/X-WWW-Form-URLEncoded; charset=UTF-8\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(
            r.content_type().as_deref(),
            Some("application/x-www-form-urlencoded")
        );
    }

    #[test]
    fn post_without_length_is_411() {
        assert_eq!(
            parse("POST /sparql HTTP/1.1\r\n\r\n").unwrap_err().status,
            411
        );
    }

    #[test]
    fn malformed_requests_are_400() {
        assert_eq!(parse("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Body shorter than Content-Length.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap_err()
                .status,
            400
        );
        // Oversized declared body.
        assert_eq!(
            parse(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            ))
            .unwrap_err()
            .status,
            413
        );
    }

    #[test]
    fn percent_decoding_spaces_and_plus() {
        // `+` is a space in form/query contexts…
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        // …but literal outside them.
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        // %2B is always a plus; %20 always a space.
        assert_eq!(percent_decode("1%2B2%20%2b3", true).unwrap(), "1+2 +3");
        assert_eq!(
            percent_decode("SELECT+%2a+WHERE+%7B+%3Fs+%3Fp+%3Fo+.+%7D", true).unwrap(),
            "SELECT * WHERE { ?s ?p ?o . }"
        );
    }

    #[test]
    fn malformed_escapes_are_errors_not_panics() {
        for bad in ["%", "%2", "a%G1", "%zz", "x%"] {
            let err = percent_decode(bad, true).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
        // Decodes to invalid UTF-8.
        assert_eq!(percent_decode("%ff%fe", true).unwrap_err().status, 400);
    }

    #[test]
    fn form_parsing() {
        let pairs = parse_form("query=ASK+%7B%7D&default-graph-uri=&flag").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("query".to_string(), "ASK {}".to_string()),
                ("default-graph-uri".to_string(), String::new()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert!(parse_form("query=%G1").is_err());
        assert_eq!(parse_form("a=1&&b=2").unwrap().len(), 2);
    }

    #[test]
    fn response_heads() {
        let mut buf = Vec::new();
        write_text(&mut buf, 200, "ok\n").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut buf = Vec::new();
        write_error(&mut buf, &HttpError::method_not_allowed("GET, POST")).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
            "{text}"
        );
        assert!(text.contains("Allow: GET, POST\r\n"), "{text}");
    }
}
