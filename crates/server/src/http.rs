//! HTTP protocol surface of the server crate.
//!
//! The request parser, response encoder, percent/form decoding and the
//! typed [`HttpError`] all live in [`lbr_net`] (the event-driven
//! connection layer) and are re-exported here so server code and
//! downstream users keep one import path.
//!
//! What remains local are the **blocking writer helpers** —
//! [`write_head`], [`write_text`], [`write_error`] — for code that
//! serializes a response straight onto an `io::Write` (scripts, tests,
//! one-shot tools). Since the keep-alive rewrite they frame responses
//! properly: `write_head` takes the body length and the keep-alive
//! decision and emits `Content-Length` and `Connection` headers, so
//! their output is interchangeable with the event loop's encoder.

use std::io::{self, Write};

pub use lbr_net::http::{
    parse_form, percent_decode, reason, HttpError, Parse, Request, RequestParser, Response,
    MAX_BODY, MAX_HEAD, MAX_HEADERS,
};

/// Writes a response head: status line, `Content-Type`,
/// `Content-Length` (when the body length is known), `Connection:
/// keep-alive|close`, any extra headers, and the terminating blank
/// line. The caller writes exactly `content_length` body bytes after.
pub fn write_head(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    content_length: Option<usize>,
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    if let Some(len) = content_length {
        write!(w, "Content-Length: {len}\r\n")?;
    }
    write!(
        w,
        "Connection: {}\r\n",
        // Without a length the body is close-delimited: the connection
        // cannot be kept alive regardless of what the caller asked for.
        if keep_alive && content_length.is_some() {
            "keep-alive"
        } else {
            "close"
        }
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")
}

/// Writes a complete framed plain-text response.
pub fn write_text(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_head(
        w,
        status,
        "text/plain; charset=utf-8",
        Some(body.len()),
        true,
        &[],
    )?;
    w.write_all(body.as_bytes())
}

/// Writes a complete framed error response for an [`HttpError`],
/// carrying `Allow` on 405s and closing the connection when the error
/// marks the stream unrecoverable.
pub fn write_error(w: &mut impl Write, err: &HttpError) -> io::Result<()> {
    let body = format!("{}\n", err.message);
    let extra: &[(&str, &str)] = match err.allow {
        Some(allow) => &[("Allow", allow)],
        None => &[],
    };
    write_head(
        w,
        err.status,
        "text/plain; charset=utf-8",
        Some(body.len()),
        !err.must_close,
        extra,
    )?;
    w.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rendered(f: impl FnOnce(&mut Vec<u8>) -> io::Result<()>) -> String {
        let mut out = Vec::new();
        f(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn head_carries_length_and_connection() {
        let text = rendered(|w| write_head(w, 200, "application/json", Some(12), true, &[]));
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n"));

        let text = rendered(|w| write_head(w, 200, "text/plain", Some(0), false, &[]));
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn unknown_length_forces_close() {
        // A close-delimited body cannot coexist with keep-alive.
        let text = rendered(|w| write_head(w, 200, "text/plain", None, true, &[]));
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn extra_headers_appended() {
        let text =
            rendered(|w| write_head(w, 503, "text/plain", Some(3), true, &[("Retry-After", "1")]));
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
    }

    #[test]
    fn text_is_fully_framed() {
        let text = rendered(|w| write_text(w, 200, "ok\n"));
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");
    }

    #[test]
    fn error_carries_allow_and_close_policy() {
        let text = rendered(|w| write_error(w, &HttpError::method_not_allowed("GET, POST")));
        assert!(
            text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
            "{text}"
        );
        assert!(text.contains("Allow: GET, POST\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");

        let text = rendered(|w| write_error(w, &HttpError::fatal(400, "desynced")));
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("desynced\n"), "{text}");
    }
}
