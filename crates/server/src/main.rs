//! `lbr-server` — serve SPARQL 1.1 Protocol queries over an N-Triples
//! file.
//!
//! ```sh
//! lbr-server data.nt                          # http://127.0.0.1:7878/sparql
//! lbr-server data.nt --addr 0.0.0.0:8080 --workers 8 --cache 512
//! lbr-server data.nt --index data.lbr         # lazy on-disk BitMat index
//! lbr-server data.nt --wal-dir wal/           # updatable: POST /update
//!
//! curl 'http://127.0.0.1:7878/sparql?query=SELECT%20*%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D'
//! curl -d 'query=ASK { ?s ?p ?o }' http://127.0.0.1:7878/sparql
//! curl -H 'Content-Type: application/sparql-query' \
//!      -H 'Accept: text/tab-separated-values' \
//!      --data-binary 'SELECT * WHERE { ?s ?p ?o }' http://127.0.0.1:7878/sparql
//! ```
//!
//! Options: `--addr HOST:PORT` (default `127.0.0.1:7878`; port `0` picks
//! an ephemeral port, printed on startup), `--workers N` (request
//! threads), `--cache N` (plan-cache entries), `--result-cache N`
//! (result-cache entries), `--queue N` (bounded admission queue; full →
//! `503` + `Retry-After`), `--request-timeout-ms MS` (per-request
//! execution budget; exceeded → `504`; `0` disables),
//! `--header-timeout-ms MS` (slow-loris cutoff → `408`), `--engine
//! lbr|pairwise|query-order|reordered|reference`, `--threads N`
//! (intra-query join workers), `--index path.lbr`, `--wal-dir dir`
//! (accept SPARQL 1.1 Update on `POST /update`, journal committed
//! updates to a write-ahead log in `dir` and replay them on restart),
//! `--slow-query-ms MS` (requests at least this slow always publish an
//! execution trace to `/debug/traces` and the slow-query log; `0`
//! disables slow capture; default 250), `--trace-ring N` (finished-trace
//! ring capacity, ≥ 1), `--trace-sample PER1024` (publish a trace for
//! this many requests per 1024 even when fast; default 0, which keeps
//! the hot path allocation-free).
//!
//! On startup the server prints exactly one line to stdout —
//! `listening on http://ADDR` — so scripts (and CI) can discover an
//! ephemeral port; everything else goes to stderr.

#![forbid(unsafe_code)]

use lbr::{Database, EngineKind};
use lbr_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    data: Option<String>,
    index: Option<String>,
    wal_dir: Option<String>,
    addr: String,
    engine: EngineKind,
    threads: Option<usize>,
    config: ServerConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        data: None,
        index: None,
        wal_dir: None,
        addr: "127.0.0.1:7878".into(),
        engine: EngineKind::Lbr,
        threads: None,
        config: ServerConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => o.addr = args.next().ok_or("--addr needs a value")?,
            "--engine" => {
                let name = args.next().ok_or("--engine needs a value")?;
                o.engine = name.parse()?;
            }
            "--workers" => {
                let n = args.next().ok_or("--workers needs a value")?;
                o.config.workers = parse_nonzero(&n, "--workers")?;
            }
            "--cache" => {
                let n = args.next().ok_or("--cache needs a value")?;
                o.config.cache_capacity = parse_nonzero(&n, "--cache")?;
            }
            "--result-cache" => {
                let n = args.next().ok_or("--result-cache needs a value")?;
                o.config.result_cache_capacity = parse_nonzero(&n, "--result-cache")?;
            }
            "--queue" => {
                let n = args.next().ok_or("--queue needs a value")?;
                o.config.queue_capacity = parse_nonzero(&n, "--queue")?;
            }
            "--request-timeout-ms" => {
                let n = args.next().ok_or("--request-timeout-ms needs a value")?;
                let ms: u64 = n
                    .parse()
                    .map_err(|_| format!("bad --request-timeout-ms value '{n}'"))?;
                // 0 disables the per-request deadline entirely.
                o.config.request_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--header-timeout-ms" => {
                let n = args.next().ok_or("--header-timeout-ms needs a value")?;
                let ms = parse_nonzero(&n, "--header-timeout-ms")? as u64;
                o.config.header_timeout = std::time::Duration::from_millis(ms);
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a value")?;
                o.threads = Some(parse_nonzero(&n, "--threads")?);
            }
            "--slow-query-ms" => {
                let n = args.next().ok_or("--slow-query-ms needs a value")?;
                let ms: u64 = n
                    .parse()
                    .map_err(|_| format!("bad --slow-query-ms value '{n}'"))?;
                // 0 disables slow capture (sampling may still publish).
                o.config.slow_query = std::time::Duration::from_millis(ms);
            }
            "--trace-ring" => {
                let n = args.next().ok_or("--trace-ring needs a value")?;
                // Capacity 0 is rejected again at bind with a clear
                // error; catching it here gives the flag-shaped message.
                o.config.trace_ring = parse_nonzero(&n, "--trace-ring")?;
            }
            "--trace-sample" => {
                let n = args.next().ok_or("--trace-sample needs a value")?;
                let per: u32 = n
                    .parse()
                    .map_err(|_| format!("bad --trace-sample value '{n}'"))?;
                if per > 1024 {
                    return Err("--trace-sample is per 1024 (0..=1024)".into());
                }
                o.config.trace_sample_per_1024 = per;
            }
            "--index" => o.index = Some(args.next().ok_or("--index needs a value")?),
            "--wal-dir" => o.wal_dir = Some(args.next().ok_or("--wal-dir needs a value")?),
            "--help" | "-h" => return Err("help".into()),
            _ if o.data.is_none() => o.data = Some(a),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(o)
}

fn parse_nonzero(s: &str, flag: &str) -> Result<usize, String> {
    let n: usize = s.parse().map_err(|_| format!("bad {flag} value '{s}'"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}

fn usage() {
    eprintln!(
        "usage: lbr-server <data.nt> [--addr HOST:PORT] [--workers N] [--cache N] \
         [--result-cache N] [--queue N] [--request-timeout-ms MS] [--header-timeout-ms MS] \
         [--engine lbr|pairwise|query-order|reordered|reference] [--threads N] \
         [--index path.lbr] [--wal-dir dir] \
         [--slow-query-ms MS] [--trace-ring N] [--trace-sample PER1024]"
    );
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            if e == "help" {
                usage();
                return ExitCode::from(2);
            }
            eprintln!("error: {e}");
            if e.contains("unexpected") || e.contains("no ") {
                usage();
            }
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let Some(data) = &opts.data else {
        return Err("no input data (an .nt file)".into());
    };

    let mut builder = Database::builder().engine(opts.engine).ntriples_file(data);
    if let Some(threads) = opts.threads {
        builder = builder.threads(threads);
    }
    if let Some(index) = &opts.index {
        builder = builder.disk_index(index);
    }
    if let Some(dir) = &opts.wal_dir {
        builder = builder.wal_dir(dir);
    }
    let db = Arc::new(builder.build().map_err(|e| e.to_string())?);
    eprintln!(
        "lbr-server: {} triples, engine {}, {} join threads",
        db.len(),
        db.engine_kind(),
        db.threads()
    );
    if opts.wal_dir.is_some() {
        eprintln!(
            "lbr-server: updatable (WAL replayed to epoch {}); POST /update enabled",
            db.epoch()
        );
    }

    let workers = opts.config.workers;
    let cache = opts.config.cache_capacity;
    let results = opts.config.result_cache_capacity;
    let queue = opts.config.queue_capacity;
    let server = Server::bind(opts.addr.as_str(), db, opts.config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "lbr-server: {workers} workers, queue {queue}, plan cache {cache} entries, \
         result cache {results} entries"
    );
    // The one stdout line: lets scripts discover an ephemeral port.
    println!("listening on http://{addr}");
    server.run().map_err(|e| e.to_string())?;
    Ok(ExitCode::SUCCESS)
}
