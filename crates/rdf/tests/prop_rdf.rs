//! Property tests for the RDF substrate: dictionary invariants and
//! N-Triples round-tripping over arbitrary term content.

use lbr_rdf::{parse_ntriples, write_ntriples, Dimension, Graph, Term, Triple};
use proptest::prelude::*;

fn arb_iri() -> impl Strategy<Value = Term> {
    "[a-zA-Z][a-zA-Z0-9:/#._-]{0,24}".prop_map(Term::iri)
}

fn arb_literal() -> impl Strategy<Value = Term> {
    // Includes quotes, backslashes, newlines and non-ASCII to stress escaping.
    prop_oneof![
        "[ -~]{0,16}".prop_map(Term::literal),
        "[\\\\\"\n\r\tâ˜ƒÃ©a-z]{0,8}".prop_map(Term::literal),
        any::<i64>().prop_map(Term::integer),
        ("[a-z]{1,6}", "[a-z]{2}").prop_map(|(l, t)| Term::lang_literal(l, t)),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => arb_iri(),
        1 => "[a-zA-Z0-9_]{1,8}".prop_map(Term::blank),
        2 => arb_literal(),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_term(), arb_iri(), arb_term()).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ntriples_roundtrip(triples in prop::collection::vec(arb_triple(), 0..40)) {
        let doc = write_ntriples(&triples);
        let back = parse_ntriples(&doc).unwrap();
        prop_assert_eq!(back, triples);
    }

    #[test]
    fn dictionary_roundtrips_every_triple(triples in prop::collection::vec(arb_triple(), 0..60)) {
        let graph = Graph::from_triples(triples);
        let originals: Vec<Triple> = graph.triples().to_vec();
        let eg = graph.encode();
        prop_assert_eq!(eg.triples.len(), originals.len());
        for (enc, orig) in eg.triples.iter().zip(&originals) {
            let dec = eg.dict.decode(enc).unwrap();
            prop_assert_eq!(&dec, orig);
        }
    }

    #[test]
    fn shared_prefix_invariant(triples in prop::collection::vec(arb_triple(), 0..60)) {
        let eg = Graph::from_triples(triples).encode();
        let d = &eg.dict;
        // Every term in the shared prefix has identical S and O IDs; every
        // term above the prefix exists in exactly one of the two dimensions.
        for (sid, term) in d.terms_of(Dimension::Subject) {
            match d.id(term, Dimension::Object) {
                Some(oid) => {
                    prop_assert_eq!(sid, oid);
                    prop_assert!(d.is_shared(sid));
                }
                None => prop_assert!(!d.is_shared(sid)),
            }
        }
        for (oid, term) in d.terms_of(Dimension::Object) {
            if d.id(term, Dimension::Subject).is_none() {
                prop_assert!(oid >= d.n_shared());
            }
        }
    }

    #[test]
    fn ids_dense_and_unique(triples in prop::collection::vec(arb_triple(), 0..60)) {
        let eg = Graph::from_triples(triples).encode();
        let d = &eg.dict;
        for dim in [Dimension::Subject, Dimension::Predicate, Dimension::Object] {
            let n = d.dim_size(dim) as usize;
            let mut seen = vec![false; n];
            for (id, term) in d.terms_of(dim) {
                prop_assert!(!seen[id as usize], "duplicate id");
                seen[id as usize] = true;
                // Forward lookup agrees with reverse lookup.
                prop_assert_eq!(d.id(term, dim), Some(id));
            }
            prop_assert!(seen.into_iter().all(|b| b));
        }
    }
}
