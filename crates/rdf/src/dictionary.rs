//! Dictionary encoding with the paper's bitcube coordinate assignment.
//!
//! Appendix D of the paper: let `Vs`, `Vp`, `Vo` be the sets of unique
//! subject, predicate and object values and `Vso = Vs ∩ Vo`. Then
//!
//! * `Vso` is mapped to IDs `0 .. |Vso|` **in both** the subject and object
//!   dimensions (the paper uses 1-based IDs; we are 0-based),
//! * `Vs \ Vso` is mapped to `|Vso| .. |Vs|` in the subject dimension,
//! * `Vo \ Vso` is mapped to `|Vso| .. |Vo|` in the object dimension,
//! * `Vp` gets its own dense ID space `0 .. |Vp|`.
//!
//! The shared `Vso` prefix is what makes S-O joins comparisons of raw IDs,
//! which the whole fold/unfold machinery of `lbr-bitmat` relies on.

use crate::error::RdfError;
use crate::term::Term;
use crate::triple::{EncodedTriple, Triple};
use crate::Id;
use std::collections::HashMap;

/// A bitcube dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Subject dimension.
    Subject,
    /// Predicate dimension.
    Predicate,
    /// Object dimension.
    Object,
}

impl Dimension {
    fn name(self) -> &'static str {
        match self {
            Dimension::Subject => "subject",
            Dimension::Predicate => "predicate",
            Dimension::Object => "object",
        }
    }
}

// A tiny internal role bit-set; avoids pulling in a bitflags dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Roles(u8);

impl Roles {
    const S: u8 = 1;
    const P: u8 = 2;
    const O: u8 = 4;

    fn add(&mut self, r: u8) {
        self.0 |= r;
    }
    fn has(self, r: u8) -> bool {
        self.0 & r != 0
    }
}

/// Accumulates terms with their roles; [`DictionaryBuilder::build`] performs
/// the Appendix-D ID assignment.
#[derive(Debug, Default)]
pub struct DictionaryBuilder {
    /// All distinct terms in first-seen order, with their role set.
    terms: Vec<(Term, Roles)>,
    index: HashMap<Term, u32>,
}

impl DictionaryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, t: &Term, role: u8) {
        if let Some(&i) = self.index.get(t) {
            self.terms[i as usize].1.add(role);
        } else {
            let i = self.terms.len() as u32;
            self.index.insert(t.clone(), i);
            let mut r = Roles::default();
            r.add(role);
            self.terms.push((t.clone(), r));
        }
    }

    /// Records one triple's terms.
    pub fn add_triple(&mut self, t: &Triple) {
        self.intern(&t.s, Roles::S);
        self.intern(&t.p, Roles::P);
        self.intern(&t.o, Roles::O);
    }

    /// Records every triple of an iterator.
    pub fn add_all<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        for t in triples {
            self.add_triple(t);
        }
    }

    /// Performs the Appendix-D assignment and freezes the dictionary.
    ///
    /// ID layout per dimension (0-based):
    ///
    /// * subject dim: `Vso` terms first (`0..n_so`), then subject-only terms;
    /// * object dim: the same `Vso` terms occupy `0..n_so` (identical IDs!),
    ///   then object-only terms;
    /// * predicate dim: independent dense IDs.
    ///
    /// Within each group, IDs follow first-seen order, which keeps the
    /// assignment deterministic for a given input order.
    pub fn build(self) -> Dictionary {
        let mut term_of_s: Vec<u32> = Vec::new(); // term index per subject ID
        let mut term_of_o: Vec<u32> = Vec::new();
        let mut term_of_p: Vec<u32> = Vec::new();

        // Pass 1: Vso terms get the shared prefix.
        for (i, (_, roles)) in self.terms.iter().enumerate() {
            if roles.has(Roles::S) && roles.has(Roles::O) {
                term_of_s.push(i as u32);
                term_of_o.push(i as u32);
            }
        }
        let n_so = term_of_s.len() as u32;
        // Pass 2: role-exclusive S / O terms, and predicates.
        for (i, (_, roles)) in self.terms.iter().enumerate() {
            let s = roles.has(Roles::S);
            let o = roles.has(Roles::O);
            if s && !o {
                term_of_s.push(i as u32);
            } else if o && !s {
                term_of_o.push(i as u32);
            }
            if roles.has(Roles::P) {
                term_of_p.push(i as u32);
            }
        }

        let terms: Vec<Term> = self.terms.into_iter().map(|(t, _)| t).collect();
        let mut s_of_term = vec![u32::MAX; terms.len()];
        let mut o_of_term = vec![u32::MAX; terms.len()];
        let mut p_of_term = vec![u32::MAX; terms.len()];
        for (id, &ti) in term_of_s.iter().enumerate() {
            s_of_term[ti as usize] = id as u32;
        }
        for (id, &ti) in term_of_o.iter().enumerate() {
            o_of_term[ti as usize] = id as u32;
        }
        for (id, &ti) in term_of_p.iter().enumerate() {
            p_of_term[ti as usize] = id as u32;
        }

        Dictionary {
            index: self.index,
            terms,
            term_of_s,
            term_of_o,
            term_of_p,
            s_of_term,
            o_of_term,
            p_of_term,
            n_so,
        }
    }
}

/// Frozen term ↔ ID mapping (see module docs for the layout).
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    index: HashMap<Term, u32>,
    terms: Vec<Term>,
    term_of_s: Vec<u32>,
    term_of_o: Vec<u32>,
    term_of_p: Vec<u32>,
    s_of_term: Vec<u32>,
    o_of_term: Vec<u32>,
    p_of_term: Vec<u32>,
    n_so: u32,
}

impl Dictionary {
    /// Number of distinct subjects (`|Vs|`).
    pub fn n_subjects(&self) -> u32 {
        self.term_of_s.len() as u32
    }

    /// Number of distinct predicates (`|Vp|`).
    pub fn n_predicates(&self) -> u32 {
        self.term_of_p.len() as u32
    }

    /// Number of distinct objects (`|Vo|`).
    pub fn n_objects(&self) -> u32 {
        self.term_of_o.len() as u32
    }

    /// Number of terms in the shared `Vso = Vs ∩ Vo` prefix.
    pub fn n_shared(&self) -> u32 {
        self.n_so
    }

    /// Size of a dimension.
    pub fn dim_size(&self, dim: Dimension) -> u32 {
        match dim {
            Dimension::Subject => self.n_subjects(),
            Dimension::Predicate => self.n_predicates(),
            Dimension::Object => self.n_objects(),
        }
    }

    fn id_in(&self, term_idx: u32, dim: Dimension) -> Option<Id> {
        let v = match dim {
            Dimension::Subject => &self.s_of_term,
            Dimension::Predicate => &self.p_of_term,
            Dimension::Object => &self.o_of_term,
        };
        match v.get(term_idx as usize) {
            Some(&id) if id != u32::MAX => Some(id),
            _ => None,
        }
    }

    /// Looks up a term's ID in a dimension.
    pub fn id(&self, term: &Term, dim: Dimension) -> Option<Id> {
        self.index.get(term).and_then(|&ti| self.id_in(ti, dim))
    }

    /// Like [`Dictionary::id`] but returns an error naming the dimension.
    pub fn id_or_err(&self, term: &Term, dim: Dimension) -> Result<Id, RdfError> {
        self.id(term, dim).ok_or_else(|| RdfError::UnknownTerm {
            term: term.to_string(),
            dimension: dim.name(),
        })
    }

    /// Resolves an ID back to its term.
    pub fn term(&self, id: Id, dim: Dimension) -> Option<&Term> {
        let v = match dim {
            Dimension::Subject => &self.term_of_s,
            Dimension::Predicate => &self.term_of_p,
            Dimension::Object => &self.term_of_o,
        };
        v.get(id as usize).map(|&ti| &self.terms[ti as usize])
    }

    /// Like [`Dictionary::term`] but returns an error naming the dimension.
    pub fn term_or_err(&self, id: Id, dim: Dimension) -> Result<&Term, RdfError> {
        self.term(id, dim).ok_or(RdfError::UnknownId {
            id,
            dimension: dim.name(),
        })
    }

    /// Encodes a raw triple. Returns `None` if any term is unknown in the
    /// required role (only happens for triples not supplied at build time).
    pub fn encode(&self, t: &Triple) -> Option<EncodedTriple> {
        Some(EncodedTriple {
            s: self.id(&t.s, Dimension::Subject)?,
            p: self.id(&t.p, Dimension::Predicate)?,
            o: self.id(&t.o, Dimension::Object)?,
        })
    }

    /// Decodes an encoded triple back to terms.
    pub fn decode(&self, t: &EncodedTriple) -> Option<Triple> {
        Some(Triple {
            s: self.term(t.s, Dimension::Subject)?.clone(),
            p: self.term(t.p, Dimension::Predicate)?.clone(),
            o: self.term(t.o, Dimension::Object)?.clone(),
        })
    }

    /// True when `id` (valid in both S and O dimensions iff `id < n_shared`)
    /// denotes the same term in either dimension — i.e. it is joinable
    /// across S-O positions.
    pub fn is_shared(&self, id: Id) -> bool {
        id < self.n_so
    }

    /// Iterates all terms of a dimension in ID order.
    pub fn terms_of(&self, dim: Dimension) -> impl Iterator<Item = (Id, &Term)> + '_ {
        let v = match dim {
            Dimension::Subject => &self.term_of_s,
            Dimension::Predicate => &self.term_of_p,
            Dimension::Object => &self.term_of_o,
        };
        v.iter()
            .enumerate()
            .map(move |(id, &ti)| (id as Id, &self.terms[ti as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Vec<Triple> {
        vec![
            t("a", "p1", "b"), // a: S-only?, b: O… also subject below
            t("b", "p2", "c"),
            t("c", "p1", "d"),
            t("e", "p3", "a"), // now a is S and O → shared
        ]
    }

    #[test]
    fn shared_prefix_assignment() {
        let mut b = DictionaryBuilder::new();
        b.add_all(&sample());
        let d = b.build();
        // Shared terms: a (S in tp1, O in tp4), b (O in tp1, S in tp2),
        // c (O in tp2, S in tp3). d is O-only, e is S-only.
        assert_eq!(d.n_shared(), 3);
        assert_eq!(d.n_subjects(), 4); // a b c e
        assert_eq!(d.n_objects(), 4); // a b c d
        assert_eq!(d.n_predicates(), 3);
        for name in ["a", "b", "c"] {
            let term = Term::iri(name);
            let s = d.id(&term, Dimension::Subject).unwrap();
            let o = d.id(&term, Dimension::Object).unwrap();
            assert_eq!(s, o, "shared term {name} must share coordinates");
            assert!(d.is_shared(s));
        }
        // Role-exclusive terms sit above the shared prefix.
        let e = d.id(&Term::iri("e"), Dimension::Subject).unwrap();
        assert!(e >= d.n_shared());
        assert_eq!(d.id(&Term::iri("e"), Dimension::Object), None);
        let dd = d.id(&Term::iri("d"), Dimension::Object).unwrap();
        assert!(dd >= d.n_shared());
        assert_eq!(d.id(&Term::iri("d"), Dimension::Subject), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let triples = sample();
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        for tr in &triples {
            let enc = d.encode(tr).unwrap();
            let dec = d.decode(&enc).unwrap();
            assert_eq!(&dec, tr);
        }
    }

    #[test]
    fn ids_are_dense() {
        let triples = sample();
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        let mut seen: Vec<Id> = d.terms_of(Dimension::Subject).map(|(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..d.n_subjects()).collect::<Vec<_>>());
        let mut seen: Vec<Id> = d.terms_of(Dimension::Object).map(|(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..d.n_objects()).collect::<Vec<_>>());
    }

    #[test]
    fn unknown_lookups_error() {
        let d = DictionaryBuilder::new().build();
        let term = Term::iri("nope");
        assert_eq!(d.id(&term, Dimension::Subject), None);
        assert!(d.id_or_err(&term, Dimension::Predicate).is_err());
        assert!(d.term_or_err(0, Dimension::Object).is_err());
        assert!(d.encode(&t("x", "y", "z")).is_none());
    }

    #[test]
    fn predicate_space_is_independent() {
        let triples = vec![t("p1", "p1", "p1")]; // same IRI in all roles
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        let term = Term::iri("p1");
        // Shared S/O coordinate...
        assert_eq!(
            d.id(&term, Dimension::Subject).unwrap(),
            d.id(&term, Dimension::Object).unwrap()
        );
        // ...and an unrelated predicate coordinate.
        assert_eq!(d.id(&term, Dimension::Predicate), Some(0));
    }

    #[test]
    fn literals_object_only() {
        let triples = vec![Triple::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::literal("x"),
        )];
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        assert_eq!(d.n_shared(), 0);
        let lit = Term::literal("x");
        assert!(d.id(&lit, Dimension::Object).is_some());
        assert!(d.id(&lit, Dimension::Subject).is_none());
    }
}
