//! Dictionary encoding with the paper's bitcube coordinate assignment.
//!
//! Appendix D of the paper: let `Vs`, `Vp`, `Vo` be the sets of unique
//! subject, predicate and object values and `Vso = Vs ∩ Vo`. Then
//!
//! * `Vso` is mapped to IDs `0 .. |Vso|` **in both** the subject and object
//!   dimensions (the paper uses 1-based IDs; we are 0-based),
//! * `Vs \ Vso` is mapped to `|Vso| .. |Vs|` in the subject dimension,
//! * `Vo \ Vso` is mapped to `|Vso| .. |Vo|` in the object dimension,
//! * `Vp` gets its own dense ID space `0 .. |Vp|`.
//!
//! The shared `Vso` prefix is what makes S-O joins comparisons of raw IDs,
//! which the whole fold/unfold machinery of `lbr-bitmat` relies on.

use crate::error::RdfError;
use crate::term::Term;
use crate::triple::{EncodedTriple, Triple};
use crate::Id;
use std::collections::HashMap;

/// A bitcube dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Subject dimension.
    Subject,
    /// Predicate dimension.
    Predicate,
    /// Object dimension.
    Object,
}

impl Dimension {
    fn name(self) -> &'static str {
        match self {
            Dimension::Subject => "subject",
            Dimension::Predicate => "predicate",
            Dimension::Object => "object",
        }
    }
}

// A tiny internal role bit-set; avoids pulling in a bitflags dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Roles(u8);

impl Roles {
    const S: u8 = 1;
    const P: u8 = 2;
    const O: u8 = 4;

    fn add(&mut self, r: u8) {
        self.0 |= r;
    }
    fn has(self, r: u8) -> bool {
        self.0 & r != 0
    }
}

/// Accumulates terms with their roles; [`DictionaryBuilder::build`] performs
/// the Appendix-D ID assignment.
#[derive(Debug, Default)]
pub struct DictionaryBuilder {
    /// All distinct terms in first-seen order, with their role set.
    terms: Vec<(Term, Roles)>,
    index: HashMap<Term, u32>,
}

impl DictionaryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, t: &Term, role: u8) {
        if let Some(&i) = self.index.get(t) {
            self.terms[i as usize].1.add(role);
        } else {
            let i = self.terms.len() as u32;
            self.index.insert(t.clone(), i);
            let mut r = Roles::default();
            r.add(role);
            self.terms.push((t.clone(), r));
        }
    }

    /// Records one triple's terms.
    pub fn add_triple(&mut self, t: &Triple) {
        self.intern(&t.s, Roles::S);
        self.intern(&t.p, Roles::P);
        self.intern(&t.o, Roles::O);
    }

    /// Records every triple of an iterator.
    pub fn add_all<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        for t in triples {
            self.add_triple(t);
        }
    }

    // Interns a term with a pre-merged role bit-set (S=1, P=2, O=4). Used
    // by the parallel loader, whose slot-ordered merge already knows each
    // term's full role set when it replays first-seen order.
    pub(crate) fn intern_roles(&mut self, t: &Term, roles: u8) {
        debug_assert!(!self.index.contains_key(t), "merged terms are distinct");
        let i = self.terms.len() as u32;
        self.index.insert(t.clone(), i);
        self.terms.push((t.clone(), Roles(roles)));
    }

    /// Performs the Appendix-D assignment and freezes the dictionary.
    ///
    /// ID layout per dimension (0-based):
    ///
    /// * subject dim: `Vso` terms first (`0..n_so`), then subject-only terms;
    /// * object dim: the same `Vso` terms occupy `0..n_so` (identical IDs!),
    ///   then object-only terms;
    /// * predicate dim: independent dense IDs.
    ///
    /// Within each group, IDs follow first-seen order, which keeps the
    /// assignment deterministic for a given input order.
    pub fn build(self) -> Dictionary {
        let mut term_of_s: Vec<u32> = Vec::new(); // term index per subject ID
        let mut term_of_o: Vec<u32> = Vec::new();
        let mut term_of_p: Vec<u32> = Vec::new();

        // Pass 1: Vso terms get the shared prefix.
        for (i, (_, roles)) in self.terms.iter().enumerate() {
            if roles.has(Roles::S) && roles.has(Roles::O) {
                term_of_s.push(i as u32);
                term_of_o.push(i as u32);
            }
        }
        let n_so = term_of_s.len() as u32;
        // Pass 2: role-exclusive S / O terms, and predicates.
        for (i, (_, roles)) in self.terms.iter().enumerate() {
            let s = roles.has(Roles::S);
            let o = roles.has(Roles::O);
            if s && !o {
                term_of_s.push(i as u32);
            } else if o && !s {
                term_of_o.push(i as u32);
            }
            if roles.has(Roles::P) {
                term_of_p.push(i as u32);
            }
        }

        let terms: Vec<Term> = self.terms.into_iter().map(|(t, _)| t).collect();
        let mut s_of_term = vec![u32::MAX; terms.len()];
        let mut o_of_term = vec![u32::MAX; terms.len()];
        let mut p_of_term = vec![u32::MAX; terms.len()];
        for (id, &ti) in term_of_s.iter().enumerate() {
            s_of_term[ti as usize] = id as u32;
        }
        for (id, &ti) in term_of_o.iter().enumerate() {
            o_of_term[ti as usize] = id as u32;
        }
        for (id, &ti) in term_of_p.iter().enumerate() {
            p_of_term[ti as usize] = id as u32;
        }

        Dictionary {
            index: self.index,
            terms,
            term_of_s,
            term_of_o,
            term_of_p,
            s_of_term,
            o_of_term,
            p_of_term,
            n_so,
        }
    }
}

/// Frozen term ↔ ID mapping (see module docs for the layout).
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    index: HashMap<Term, u32>,
    terms: Vec<Term>,
    term_of_s: Vec<u32>,
    term_of_o: Vec<u32>,
    term_of_p: Vec<u32>,
    s_of_term: Vec<u32>,
    o_of_term: Vec<u32>,
    p_of_term: Vec<u32>,
    n_so: u32,
}

impl Dictionary {
    /// Number of distinct subjects (`|Vs|`).
    pub fn n_subjects(&self) -> u32 {
        self.term_of_s.len() as u32
    }

    /// Number of distinct predicates (`|Vp|`).
    pub fn n_predicates(&self) -> u32 {
        self.term_of_p.len() as u32
    }

    /// Number of distinct objects (`|Vo|`).
    pub fn n_objects(&self) -> u32 {
        self.term_of_o.len() as u32
    }

    /// Number of terms in the shared `Vso = Vs ∩ Vo` prefix.
    pub fn n_shared(&self) -> u32 {
        self.n_so
    }

    /// Size of a dimension.
    pub fn dim_size(&self, dim: Dimension) -> u32 {
        match dim {
            Dimension::Subject => self.n_subjects(),
            Dimension::Predicate => self.n_predicates(),
            Dimension::Object => self.n_objects(),
        }
    }

    fn id_in(&self, term_idx: u32, dim: Dimension) -> Option<Id> {
        let v = match dim {
            Dimension::Subject => &self.s_of_term,
            Dimension::Predicate => &self.p_of_term,
            Dimension::Object => &self.o_of_term,
        };
        match v.get(term_idx as usize) {
            Some(&id) if id != u32::MAX => Some(id),
            _ => None,
        }
    }

    /// Looks up a term's ID in a dimension.
    pub fn id(&self, term: &Term, dim: Dimension) -> Option<Id> {
        self.index.get(term).and_then(|&ti| self.id_in(ti, dim))
    }

    /// Like [`Dictionary::id`] but returns an error naming the dimension.
    pub fn id_or_err(&self, term: &Term, dim: Dimension) -> Result<Id, RdfError> {
        self.id(term, dim).ok_or_else(|| RdfError::UnknownTerm {
            term: term.to_string(),
            dimension: dim.name(),
        })
    }

    /// Resolves an ID back to its term.
    pub fn term(&self, id: Id, dim: Dimension) -> Option<&Term> {
        let v = match dim {
            Dimension::Subject => &self.term_of_s,
            Dimension::Predicate => &self.term_of_p,
            Dimension::Object => &self.term_of_o,
        };
        v.get(id as usize).map(|&ti| &self.terms[ti as usize])
    }

    /// Like [`Dictionary::term`] but returns an error naming the dimension.
    pub fn term_or_err(&self, id: Id, dim: Dimension) -> Result<&Term, RdfError> {
        self.term(id, dim).ok_or(RdfError::UnknownId {
            id,
            dimension: dim.name(),
        })
    }

    /// Encodes a raw triple. Returns `None` if any term is unknown in the
    /// required role (only happens for triples not supplied at build time).
    pub fn encode(&self, t: &Triple) -> Option<EncodedTriple> {
        Some(EncodedTriple {
            s: self.id(&t.s, Dimension::Subject)?,
            p: self.id(&t.p, Dimension::Predicate)?,
            o: self.id(&t.o, Dimension::Object)?,
        })
    }

    /// Decodes an encoded triple back to terms.
    pub fn decode(&self, t: &EncodedTriple) -> Option<Triple> {
        Some(Triple {
            s: self.term(t.s, Dimension::Subject)?.clone(),
            p: self.term(t.p, Dimension::Predicate)?.clone(),
            o: self.term(t.o, Dimension::Object)?.clone(),
        })
    }

    /// True when `id` (valid in both S and O dimensions iff `id < n_shared`)
    /// denotes the same term in either dimension — i.e. it is joinable
    /// across S-O positions.
    pub fn is_shared(&self, id: Id) -> bool {
        id < self.n_so
    }

    /// Iterates all terms of a dimension in ID order.
    pub fn terms_of(&self, dim: Dimension) -> impl Iterator<Item = (Id, &Term)> + '_ {
        let v = match dim {
            Dimension::Subject => &self.term_of_s,
            Dimension::Predicate => &self.term_of_p,
            Dimension::Object => &self.term_of_o,
        };
        v.iter()
            .enumerate()
            .map(move |(id, &ti)| (id as Id, &self.terms[ti as usize]))
    }

    /// Serializes the frozen dictionary to a flat byte image:
    /// `[n_terms][tagged terms][term_of_s][term_of_o][term_of_p][n_so]`,
    /// all integers little-endian `u32`, strings length-prefixed. The
    /// inverse maps and hash index are rebuilt on load — they are fully
    /// determined by the stored vectors.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        fn put_ids(out: &mut Vec<u8>, ids: &[u32]) {
            out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for &id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for t in &self.terms {
            match t {
                Term::Iri(v) => {
                    out.push(0);
                    put_str(&mut out, v);
                }
                Term::BlankNode(v) => {
                    out.push(1);
                    put_str(&mut out, v);
                }
                Term::Literal {
                    lexical,
                    datatype,
                    lang,
                } => {
                    out.push(2);
                    put_str(&mut out, lexical);
                    let flags = datatype.is_some() as u8 | ((lang.is_some() as u8) << 1);
                    out.push(flags);
                    if let Some(dt) = datatype {
                        put_str(&mut out, dt);
                    }
                    if let Some(l) = lang {
                        put_str(&mut out, l);
                    }
                }
            }
        }
        put_ids(&mut out, &self.term_of_s);
        put_ids(&mut out, &self.term_of_o);
        put_ids(&mut out, &self.term_of_p);
        out.extend_from_slice(&self.n_so.to_le_bytes());
        out
    }

    /// Inverse of [`Dictionary::to_bytes`]. Every length and index is
    /// bounds-checked; malformed input yields [`RdfError::Corrupt`], never
    /// a panic or out-of-bounds access.
    pub fn from_bytes(bytes: &[u8]) -> Result<Dictionary, RdfError> {
        struct R<'a> {
            b: &'a [u8],
            pos: usize,
        }
        fn corrupt(message: &str) -> RdfError {
            RdfError::Corrupt {
                message: message.to_string(),
            }
        }
        impl<'a> R<'a> {
            fn u8(&mut self) -> Result<u8, RdfError> {
                let v = *self.b.get(self.pos).ok_or_else(|| corrupt("truncated"))?;
                self.pos += 1;
                Ok(v)
            }
            fn u32(&mut self) -> Result<u32, RdfError> {
                let end = self.pos.checked_add(4).ok_or_else(|| corrupt("overflow"))?;
                let s = self
                    .b
                    .get(self.pos..end)
                    .ok_or_else(|| corrupt("truncated"))?;
                self.pos = end;
                Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
            }
            fn string(&mut self) -> Result<String, RdfError> {
                let len = self.u32()? as usize;
                let end = self
                    .pos
                    .checked_add(len)
                    .ok_or_else(|| corrupt("overflow"))?;
                let s = self
                    .b
                    .get(self.pos..end)
                    .ok_or_else(|| corrupt("truncated string"))?;
                self.pos = end;
                String::from_utf8(s.to_vec()).map_err(|_| corrupt("invalid UTF-8"))
            }
            fn ids(&mut self, max: u32) -> Result<Vec<u32>, RdfError> {
                let n = self.u32()? as usize;
                // Cheap pre-check so a corrupt length cannot trigger a huge
                // allocation: each ID takes 4 bytes of remaining input.
                if n > (self.b.len() - self.pos) / 4 {
                    return Err(corrupt("ID vector longer than input"));
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = self.u32()?;
                    if id >= max {
                        return Err(corrupt("term index out of range"));
                    }
                    v.push(id);
                }
                Ok(v)
            }
        }
        let mut r = R { b: bytes, pos: 0 };
        let n_terms = r.u32()? as usize;
        let mut terms = Vec::new();
        for _ in 0..n_terms {
            let term = match r.u8()? {
                0 => Term::Iri(r.string()?),
                1 => Term::BlankNode(r.string()?),
                2 => {
                    let lexical = r.string()?;
                    let flags = r.u8()?;
                    if flags & !3 != 0 || flags == 3 {
                        return Err(corrupt("invalid literal flags"));
                    }
                    let datatype = if flags & 1 != 0 {
                        Some(r.string()?)
                    } else {
                        None
                    };
                    let lang = if flags & 2 != 0 {
                        Some(r.string()?)
                    } else {
                        None
                    };
                    Term::Literal {
                        lexical,
                        datatype,
                        lang,
                    }
                }
                _ => return Err(corrupt("unknown term tag")),
            };
            terms.push(term);
        }
        let term_of_s = r.ids(n_terms as u32)?;
        let term_of_o = r.ids(n_terms as u32)?;
        let term_of_p = r.ids(n_terms as u32)?;
        let n_so = r.u32()?;
        if r.pos != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        if n_so as usize > term_of_s.len() || n_so as usize > term_of_o.len() {
            return Err(corrupt("shared prefix exceeds dimension size"));
        }
        if term_of_s[..n_so as usize] != term_of_o[..n_so as usize] {
            return Err(corrupt("shared prefix mismatch between S and O"));
        }
        let mut index = HashMap::with_capacity(terms.len());
        for (i, t) in terms.iter().enumerate() {
            if index.insert(t.clone(), i as u32).is_some() {
                return Err(corrupt("duplicate term"));
            }
        }
        let mut s_of_term = vec![u32::MAX; terms.len()];
        let mut o_of_term = vec![u32::MAX; terms.len()];
        let mut p_of_term = vec![u32::MAX; terms.len()];
        for (id, &ti) in term_of_s.iter().enumerate() {
            s_of_term[ti as usize] = id as u32;
        }
        for (id, &ti) in term_of_o.iter().enumerate() {
            o_of_term[ti as usize] = id as u32;
        }
        for (id, &ti) in term_of_p.iter().enumerate() {
            p_of_term[ti as usize] = id as u32;
        }
        Ok(Dictionary {
            index,
            terms,
            term_of_s,
            term_of_o,
            term_of_p,
            s_of_term,
            o_of_term,
            p_of_term,
            n_so,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Vec<Triple> {
        vec![
            t("a", "p1", "b"), // a: S-only?, b: O… also subject below
            t("b", "p2", "c"),
            t("c", "p1", "d"),
            t("e", "p3", "a"), // now a is S and O → shared
        ]
    }

    #[test]
    fn shared_prefix_assignment() {
        let mut b = DictionaryBuilder::new();
        b.add_all(&sample());
        let d = b.build();
        // Shared terms: a (S in tp1, O in tp4), b (O in tp1, S in tp2),
        // c (O in tp2, S in tp3). d is O-only, e is S-only.
        assert_eq!(d.n_shared(), 3);
        assert_eq!(d.n_subjects(), 4); // a b c e
        assert_eq!(d.n_objects(), 4); // a b c d
        assert_eq!(d.n_predicates(), 3);
        for name in ["a", "b", "c"] {
            let term = Term::iri(name);
            let s = d.id(&term, Dimension::Subject).unwrap();
            let o = d.id(&term, Dimension::Object).unwrap();
            assert_eq!(s, o, "shared term {name} must share coordinates");
            assert!(d.is_shared(s));
        }
        // Role-exclusive terms sit above the shared prefix.
        let e = d.id(&Term::iri("e"), Dimension::Subject).unwrap();
        assert!(e >= d.n_shared());
        assert_eq!(d.id(&Term::iri("e"), Dimension::Object), None);
        let dd = d.id(&Term::iri("d"), Dimension::Object).unwrap();
        assert!(dd >= d.n_shared());
        assert_eq!(d.id(&Term::iri("d"), Dimension::Subject), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let triples = sample();
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        for tr in &triples {
            let enc = d.encode(tr).unwrap();
            let dec = d.decode(&enc).unwrap();
            assert_eq!(&dec, tr);
        }
    }

    #[test]
    fn ids_are_dense() {
        let triples = sample();
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        let mut seen: Vec<Id> = d.terms_of(Dimension::Subject).map(|(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..d.n_subjects()).collect::<Vec<_>>());
        let mut seen: Vec<Id> = d.terms_of(Dimension::Object).map(|(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..d.n_objects()).collect::<Vec<_>>());
    }

    #[test]
    fn unknown_lookups_error() {
        let d = DictionaryBuilder::new().build();
        let term = Term::iri("nope");
        assert_eq!(d.id(&term, Dimension::Subject), None);
        assert!(d.id_or_err(&term, Dimension::Predicate).is_err());
        assert!(d.term_or_err(0, Dimension::Object).is_err());
        assert!(d.encode(&t("x", "y", "z")).is_none());
    }

    #[test]
    fn predicate_space_is_independent() {
        let triples = vec![t("p1", "p1", "p1")]; // same IRI in all roles
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        let term = Term::iri("p1");
        // Shared S/O coordinate...
        assert_eq!(
            d.id(&term, Dimension::Subject).unwrap(),
            d.id(&term, Dimension::Object).unwrap()
        );
        // ...and an unrelated predicate coordinate.
        assert_eq!(d.id(&term, Dimension::Predicate), Some(0));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut triples = sample();
        triples.push(Triple::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer"),
        ));
        triples.push(Triple::new(
            Term::blank("b0"),
            Term::iri("p"),
            Term::lang_literal("hi", "en"),
        ));
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        let bytes = d.to_bytes();
        let d2 = Dictionary::from_bytes(&bytes).unwrap();
        assert_eq!(d2.n_shared(), d.n_shared());
        for dim in [Dimension::Subject, Dimension::Predicate, Dimension::Object] {
            let a: Vec<_> = d.terms_of(dim).collect();
            let b: Vec<_> = d2.terms_of(dim).collect();
            assert_eq!(a, b);
        }
        for tr in &triples {
            assert_eq!(d2.encode(tr), d.encode(tr));
        }
        // And the re-serialization is byte-identical.
        assert_eq!(d2.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_bytes_error_not_panic() {
        let mut b = DictionaryBuilder::new();
        b.add_all(&sample());
        let bytes = b.build().to_bytes();
        // Truncations at every prefix length must error cleanly.
        for n in 0..bytes.len() {
            assert!(Dictionary::from_bytes(&bytes[..n]).is_err(), "prefix {n}");
        }
        // Flipped bytes either error or produce *some* dictionary — never
        // panic. (Most flips break a length or an index bound.)
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let _ = Dictionary::from_bytes(&bad);
        }
    }

    #[test]
    fn literals_object_only() {
        let triples = vec![Triple::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::literal("x"),
        )];
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let d = b.build();
        assert_eq!(d.n_shared(), 0);
        let lit = Term::literal("x");
        assert!(d.id(&lit, Dimension::Object).is_some());
        assert!(d.id(&lit, Dimension::Subject).is_none());
    }
}
