//! # lbr-rdf
//!
//! RDF data-model substrate for the Left Bit Right (LBR) reproduction.
//!
//! This crate provides:
//!
//! * [`Term`] — IRIs, literals and blank nodes,
//! * [`Triple`] / [`EncodedTriple`] — raw and dictionary-encoded triples,
//! * [`Dictionary`] — the integer ID assignment of the paper's Appendix D,
//!   where subject and object values that occur in *both* roles
//!   (`Vso = Vs ∩ Vo`) share the same coordinate so S-O joins compare raw
//!   IDs,
//! * [`Graph`] / [`EncodedGraph`] — triple containers,
//! * [`ntriples`] — a line-oriented N-Triples parser and writer.
//!
//! Everything downstream (the BitMat indexes in `lbr-bitmat` and the LBR
//! engine in `lbr-core`) works purely on the `u32` IDs handed out here.

#![forbid(unsafe_code)]

pub mod dictionary;
pub mod error;
pub mod graph;
pub mod ntriples;
pub mod parallel;
pub mod term;
pub mod triple;

pub use dictionary::{Dictionary, DictionaryBuilder, Dimension};
pub use error::RdfError;
pub use graph::{EncodedGraph, Graph};
pub use ntriples::{parse_ntriples, write_ntriples};
pub use parallel::{load_ntriples_parallel, parse_ntriples_parallel};
pub use term::Term;
pub use triple::{EncodedTriple, Triple};

/// Integer identifier of a term within one bitcube dimension.
///
/// The paper stores run lengths and IDs as 4-byte integers; we mirror that
/// with `u32`. IDs are dense per dimension (see [`Dictionary`]).
pub type Id = u32;
