//! Line-oriented N-Triples parser and writer (RDF 1.1 N-Triples subset).
//!
//! Supported term forms: `<iri>`, `_:label`, `"literal"`, `"literal"@lang`,
//! `"literal"^^<datatype>`; `\" \\ \n \r \t \u{XXXX} \U{XXXXXXXX}` literal
//! escapes; `#` comment lines and blank lines.

use crate::error::RdfError;
use crate::term::Term;
use crate::triple::Triple;
use std::fmt::Write as _;

/// The `xsd:integer` datatype IRI, used by [`Term::integer`].
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// Parses an N-Triples document into triples.
pub fn parse_ntriples(input: &str) -> Result<Vec<Triple>, RdfError> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line, lineno + 1)?);
    }
    Ok(out)
}

/// Serializes triples as an N-Triples document (one line per triple).
pub fn write_ntriples<'a>(triples: impl IntoIterator<Item = &'a Triple>) -> String {
    let mut s = String::new();
    for t in triples {
        let _ = writeln!(s, "{t}");
    }
    s
}

/// Escapes a literal's lexical form for N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), RdfError> {
        match self.bump() {
            Some(x) if x == b => Ok(()),
            other => Err(self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                other.map(|c| c as char)
            ))),
        }
    }

    fn take_until(&mut self, stop: u8, what: &str) -> Result<&'a str, RdfError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == stop {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated {what}")))
    }

    fn parse_term(&mut self) -> Result<Term, RdfError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                self.pos += 1;
                Ok(Term::Iri(self.take_until(b'>', "IRI")?.to_owned()))
            }
            Some(b'_') => {
                self.pos += 1;
                self.expect(b':')?;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.err("empty blank node label"));
                }
                Ok(Term::BlankNode(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .unwrap()
                        .to_owned(),
                ))
            }
            Some(b'"') => {
                self.pos += 1;
                let lexical = self.parse_quoted()?;
                match self.peek() {
                    Some(b'^') => {
                        self.pos += 1;
                        self.expect(b'^')?;
                        self.expect(b'<')?;
                        let dt = self.take_until(b'>', "datatype IRI")?.to_owned();
                        Ok(Term::Literal {
                            lexical,
                            datatype: Some(dt),
                            lang: None,
                        })
                    }
                    Some(b'@') => {
                        self.pos += 1;
                        let start = self.pos;
                        while let Some(b) = self.peek() {
                            if b.is_ascii_alphanumeric() || b == b'-' {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                        if self.pos == start {
                            return Err(self.err("empty language tag"));
                        }
                        let lang = std::str::from_utf8(&self.bytes[start..self.pos])
                            .unwrap()
                            .to_owned();
                        Ok(Term::Literal {
                            lexical,
                            datatype: None,
                            lang: Some(lang),
                        })
                    }
                    _ => Ok(Term::Literal {
                        lexical,
                        datatype: None,
                        lang: None,
                    }),
                }
            }
            other => Err(self.err(format!(
                "unexpected term start {:?}",
                other.map(|c| c as char)
            ))),
        }
    }

    /// Parses the remainder of a quoted literal (opening quote consumed).
    fn parse_quoted(&mut self) -> Result<String, RdfError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated literal")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode(4)?),
                    Some(b'U') => out.push(self.parse_unicode(8)?),
                    other => {
                        return Err(self.err(format!("bad escape {:?}", other.map(|c| c as char))));
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multibyte UTF-8 sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in literal"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_unicode(&mut self, digits: usize) -> Result<char, RdfError> {
        let mut v: u32 = 0;
        for _ in 0..digits {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or_else(|| self.err("invalid unicode scalar"))
    }
}

pub(crate) fn parse_line(line: &str, lineno: usize) -> Result<Triple, RdfError> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
        line: lineno,
    };
    let s = c.parse_term()?;
    let p = c.parse_term()?;
    let o = c.parse_term()?;
    c.skip_ws();
    match c.bump() {
        Some(b'.') => {}
        other => {
            return Err(c.err(format!(
                "expected '.', found {:?}",
                other.map(|x| x as char)
            )));
        }
    }
    c.skip_ws();
    if c.peek().is_some() {
        return Err(c.err("trailing characters after '.'"));
    }
    Ok(Triple::new(s, p, o))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_forms() {
        let doc = r#"
# a comment
<http://ex/s> <http://ex/p> <http://ex/o> .
_:b0 <http://ex/p> "plain" .
<http://ex/s> <http://ex/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/s> <http://ex/p> "hola"@es .
"#;
        let ts = parse_ntriples(doc).unwrap();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[0].s, Term::iri("http://ex/s"));
        assert_eq!(ts[1].s, Term::blank("b0"));
        assert_eq!(ts[2].o, Term::typed_literal("5", XSD_INTEGER));
        assert_eq!(ts[3].o, Term::lang_literal("hola", "es"));
    }

    #[test]
    fn parses_escapes() {
        let doc = "<s> <p> \"a\\\"b\\\\c\\nd\\u0041\" .";
        let ts = parse_ntriples(doc).unwrap();
        assert_eq!(ts[0].o, Term::literal("a\"b\\c\ndA"));
    }

    #[test]
    fn parses_multibyte_utf8() {
        let doc = "<s> <p> \"héllo wörld ☃\" .";
        let ts = parse_ntriples(doc).unwrap();
        assert_eq!(ts[0].o, Term::literal("héllo wörld ☃"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_ntriples("<s> <p> .").is_err());
        assert!(parse_ntriples("<s> <p> <o>").is_err());
        assert!(parse_ntriples("<s> <p> \"unterminated .").is_err());
        assert!(parse_ntriples("<s <p> <o> .").is_err());
        assert!(parse_ntriples("<s> <p> <o> . junk").is_err());
        assert!(parse_ntriples("_: <p> <o> .").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let doc = "<s> <p> <o> .\nbogus line here\n";
        match parse_ntriples(doc) {
            Err(RdfError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip() {
        let triples = vec![
            Triple::new(
                Term::iri("http://ex/s"),
                Term::iri("http://ex/p"),
                Term::literal("x\ny"),
            ),
            Triple::new(
                Term::blank("b"),
                Term::iri("p"),
                Term::lang_literal("ciao", "it"),
            ),
            Triple::new(
                Term::iri("s"),
                Term::iri("p"),
                Term::typed_literal("7", XSD_INTEGER),
            ),
        ];
        let doc = write_ntriples(&triples);
        let back = parse_ntriples(&doc).unwrap();
        assert_eq!(back, triples);
    }
}
