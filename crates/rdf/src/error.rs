//! Error type for RDF parsing and encoding.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// N-Triples syntax error with line number (1-based) and message.
    Syntax {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A term was looked up in a [`crate::Dictionary`] under a role it never
    /// appeared in (e.g. asking for the subject ID of an object-only term).
    UnknownTerm {
        /// Display form of the term.
        term: String,
        /// The dimension that was queried.
        dimension: &'static str,
    },
    /// An ID was out of range for the queried dictionary dimension.
    UnknownId {
        /// The offending ID.
        id: u32,
        /// The dimension that was queried.
        dimension: &'static str,
    },
    /// A serialized dictionary (segment checkpoint) failed validation.
    Corrupt {
        /// Human-readable description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "N-Triples syntax error on line {line}: {message}")
            }
            RdfError::UnknownTerm { term, dimension } => {
                write!(f, "term {term} has no ID in the {dimension} dimension")
            }
            RdfError::UnknownId { id, dimension } => {
                write!(f, "ID {id} is out of range for the {dimension} dimension")
            }
            RdfError::Corrupt { message } => {
                write!(f, "corrupt serialized dictionary: {message}")
            }
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RdfError::Syntax {
            line: 3,
            message: "bad IRI".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = RdfError::UnknownTerm {
            term: "<x>".into(),
            dimension: "subject",
        };
        assert!(e.to_string().contains("subject"));
        let e = RdfError::UnknownId {
            id: 9,
            dimension: "object",
        };
        assert!(e.to_string().contains('9'));
    }
}
