//! Parallel bulk-load primitives: chunked N-Triples parsing and parallel
//! dictionary-encoding on `std::thread::scope` workers.
//!
//! Everything here is **deterministic**: for any thread count the results
//! are byte-identical to the serial paths ([`crate::parse_ntriples`],
//! [`crate::Graph::encode`]). The dictionary is the interesting case — the
//! Appendix-D assignment depends on *first-seen order*, which a naive
//! sharded intern would scramble. The trick is that first-seen order over
//! a fixed triple list is a total order computable independently per
//! chunk: occurrence *slot* `3·i + j` for triple index `i` and position
//! `j` (0 = subject, 1 = predicate, 2 = object). Each worker builds a
//! per-chunk `term → (min slot, role set)` map; the merge keeps the
//! global minimum slot and ORs the roles; sorting the merged entries by
//! slot reproduces the serial intern order exactly, so the IDs the
//! frozen [`Dictionary`] hands out are reproducible at any parallelism.

use crate::dictionary::{Dictionary, DictionaryBuilder};
use crate::error::RdfError;
use crate::graph::EncodedGraph;
use crate::ntriples::parse_line;
use crate::triple::{EncodedTriple, Triple};

/// Splits `0..len` into at most `parts` non-empty contiguous ranges of
/// near-equal size (fewer when `len < parts`).
pub(crate) fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 0..parts {
        let end = len * (k + 1) / parts;
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Parses an N-Triples document on `threads` workers, each taking a
/// contiguous run of whole lines. Identical output (and identical
/// first-error reporting, with absolute line numbers) to
/// [`crate::parse_ntriples`].
pub fn parse_ntriples_parallel(input: &str, threads: usize) -> Result<Vec<Triple>, RdfError> {
    let threads = threads.max(1);
    // Small inputs: chunking overhead dominates; one worker is exact.
    if threads == 1 || input.len() < 1 << 16 {
        return crate::ntriples::parse_ntriples(input);
    }
    let bytes = input.as_bytes();
    // Chunk starts snapped forward to line starts so no line is split.
    let mut starts = vec![0usize];
    for k in 1..threads {
        let mut pos = input.len() * k / threads;
        while pos < bytes.len() && bytes[pos] != b'\n' {
            pos += 1;
        }
        if pos < bytes.len() {
            pos += 1;
        }
        if pos > *starts.last().expect("starts is never empty") {
            starts.push(pos);
        }
    }
    starts.push(input.len());

    // Each worker parses its chunk with chunk-relative line numbers; an
    // error is fixed up to the absolute line number afterwards (the error
    // path may count newlines — it aborts the whole load anyway).
    let results: Vec<Result<Vec<Triple>, RdfError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = starts
            .windows(2)
            .map(|w| {
                let chunk = &input[w[0]..w[1]];
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (lineno, line) in chunk.lines().enumerate() {
                        let line = line.trim();
                        if line.is_empty() || line.starts_with('#') {
                            continue;
                        }
                        out.push(parse_line(line, lineno + 1)?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parser worker panicked"))
            .collect()
    });

    let mut out = Vec::new();
    for (chunk_idx, result) in results.into_iter().enumerate() {
        match result {
            Ok(mut triples) => out.append(&mut triples),
            Err(RdfError::Syntax { line, message }) => {
                let base = input[..starts[chunk_idx]]
                    .bytes()
                    .filter(|&b| b == b'\n')
                    .count();
                return Err(RdfError::Syntax {
                    line: base + line,
                    message,
                });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(out)
}

/// Builds the Appendix-D dictionary from a **sorted, deduplicated** triple
/// list on `threads` workers — ID-for-ID identical to feeding the same
/// list through [`DictionaryBuilder::add_all`] (see the module docs for
/// why the slot-ordered merge reproduces first-seen order).
pub fn build_dictionary_parallel(triples: &[Triple], threads: usize) -> Dictionary {
    let threads = threads.max(1);
    if threads == 1 || triples.len() < 1 << 12 {
        let mut b = DictionaryBuilder::new();
        b.add_all(triples);
        return b.build();
    }
    // Per-chunk term → (min slot, roles) maps, merged smallest-slot-wins.
    use std::collections::HashMap;
    let merged: Vec<(&crate::term::Term, (u64, u8))> = {
        let maps: Vec<HashMap<&crate::term::Term, (u64, u8)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunk_ranges(triples.len(), threads)
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let mut map: HashMap<&crate::term::Term, (u64, u8)> = HashMap::new();
                        for (i, t) in triples[range.clone()].iter().enumerate() {
                            let idx = (range.start + i) as u64;
                            for (j, (term, role)) in [(&t.s, 1u8), (&t.p, 2u8), (&t.o, 4u8)]
                                .into_iter()
                                .enumerate()
                            {
                                let slot = idx * 3 + j as u64;
                                map.entry(term)
                                    .and_modify(|e| e.1 |= role)
                                    .or_insert((slot, role));
                            }
                        }
                        map
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("dictionary worker panicked"))
                .collect()
        });
        // Chunks are processed in ascending slot ranges, so the first map
        // that knows a term already holds its global minimum slot — later
        // chunks only contribute role bits.
        let mut merged: HashMap<&crate::term::Term, (u64, u8)> = HashMap::new();
        for map in maps {
            for (term, (slot, roles)) in map {
                merged
                    .entry(term)
                    .and_modify(|e| {
                        e.0 = e.0.min(slot);
                        e.1 |= roles;
                    })
                    .or_insert((slot, roles));
            }
        }
        let mut v: Vec<_> = merged.into_iter().collect();
        v.sort_unstable_by_key(|&(_, (slot, _))| slot);
        v
    };
    let mut b = DictionaryBuilder::new();
    for (term, (_, roles)) in merged {
        b.intern_roles(term, roles);
    }
    b.build()
}

/// Dictionary-encodes a sorted, deduplicated triple list on `threads`
/// workers under an already-built dictionary. Panics (like the serial
/// path's `expect`) if a triple carries a term the dictionary lacks.
pub fn encode_triples_parallel(
    dict: &Dictionary,
    triples: &[Triple],
    threads: usize,
) -> Vec<EncodedTriple> {
    let threads = threads.max(1);
    if threads == 1 || triples.len() < 1 << 12 {
        return triples
            .iter()
            .map(|t| dict.encode(t).expect("all terms were added to the builder"))
            .collect();
    }
    let chunks: Vec<Vec<EncodedTriple>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunk_ranges(triples.len(), threads)
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    triples[range]
                        .iter()
                        .map(|t| dict.encode(t).expect("all terms were added to the builder"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("encode worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(triples.len());
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

/// Parses and encodes an N-Triples document end-to-end on `threads`
/// workers: chunked parse → sort/dedup → slot-merged parallel dictionary
/// → parallel encode. Byte-identical to
/// `Graph::from_triples(parse_ntriples(input)?).encode()`.
pub fn load_ntriples_parallel(input: &str, threads: usize) -> Result<EncodedGraph, RdfError> {
    let triples = parse_ntriples_parallel(input, threads)?;
    Ok(crate::graph::Graph::from_triples(triples).encode_with_threads(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::term::Term;
    use crate::write_ntriples;

    fn synth(n: usize) -> Vec<Triple> {
        // Terms recur across roles so the shared Vso prefix is non-trivial,
        // and literals exercise the object-only path.
        (0..n)
            .map(|i| {
                let s = Term::iri(format!("e{}", i % 97));
                let p = Term::iri(format!("p{}", i % 7));
                let o = if i % 3 == 0 {
                    Term::literal(format!("v{i}"))
                } else {
                    Term::iri(format!("e{}", (i * 31) % 97))
                };
                Triple::new(s, p, o)
            })
            .collect()
    }

    #[test]
    fn parallel_parse_matches_serial() {
        let triples = synth(9000);
        let doc = write_ntriples(&triples);
        let serial = crate::parse_ntriples(&doc).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = parse_ntriples_parallel(&doc, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_parse_reports_absolute_line() {
        // Force the parallel path with a large document and an error near
        // the end.
        let mut doc = write_ntriples(&synth(9000));
        let good_lines = doc.lines().count();
        doc.push_str("bogus line here\n");
        match parse_ntriples_parallel(&doc, 4) {
            Err(RdfError::Syntax { line, .. }) => assert_eq!(line, good_lines + 1),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn parallel_dictionary_is_id_identical() {
        let mut g = Graph::from_triples(synth(20_000));
        g.finish();
        let triples = g.triples().to_vec();
        let mut b = DictionaryBuilder::new();
        b.add_all(&triples);
        let serial = b.build();
        for threads in [2, 3, 8] {
            let par = build_dictionary_parallel(&triples, threads);
            assert_eq!(par.n_subjects(), serial.n_subjects());
            assert_eq!(par.n_objects(), serial.n_objects());
            assert_eq!(par.n_predicates(), serial.n_predicates());
            assert_eq!(par.n_shared(), serial.n_shared());
            for t in &triples {
                assert_eq!(par.encode(t), serial.encode(t), "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_encode_graph_matches_serial() {
        let triples = synth(20_000);
        let serial = Graph::from_triples(triples.clone()).encode();
        for threads in [1, 2, 8] {
            let par = Graph::from_triples(triples.clone()).encode_with_threads(threads);
            assert_eq!(par.triples, serial.triples, "threads={threads}");
            assert_eq!(par.dict.n_subjects(), serial.dict.n_subjects());
        }
    }

    #[test]
    fn end_to_end_load_matches_serial() {
        let triples = synth(9000);
        let doc = write_ntriples(&triples);
        let serial = Graph::from_triples(crate::parse_ntriples(&doc).unwrap()).encode();
        let par = load_ntriples_parallel(&doc, 4).unwrap();
        assert_eq!(par.triples, serial.triples);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, parts) in [(0, 4), (1, 4), (7, 3), (100, 8), (8, 100)] {
            let ranges = chunk_ranges(len, parts);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }
}
