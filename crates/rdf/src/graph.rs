//! Triple containers: raw [`Graph`] and dictionary-encoded [`EncodedGraph`].

use crate::dictionary::{Dictionary, DictionaryBuilder};
use crate::triple::{EncodedTriple, Triple};

/// An in-memory RDF graph: a *set* of triples.
///
/// RDF graphs are sets, so [`Graph::finish`] sorts and deduplicates; this
/// matters because the generators in `lbr-datagen` may emit duplicates.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    triples: Vec<Triple>,
    normalized: bool,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph from triples (deduplicated).
    pub fn from_triples(triples: Vec<Triple>) -> Self {
        let mut g = Graph {
            triples,
            normalized: false,
        };
        g.finish();
        g
    }

    /// Adds one triple.
    pub fn insert(&mut self, t: Triple) {
        self.triples.push(t);
        self.normalized = false;
    }

    /// Sorts and deduplicates the triples.
    pub fn finish(&mut self) {
        if !self.normalized {
            self.triples.sort_unstable();
            self.triples.dedup();
            self.normalized = true;
        }
    }

    /// Number of distinct triples (after [`Graph::finish`]).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Slice of the triples.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Dictionary-encodes the graph (Appendix D assignment).
    pub fn encode(mut self) -> EncodedGraph {
        self.finish();
        let mut b = DictionaryBuilder::new();
        b.add_all(&self.triples);
        let dict = b.build();
        let triples = self
            .triples
            .iter()
            .map(|t| dict.encode(t).expect("all terms were added to the builder"))
            .collect();
        EncodedGraph { dict, triples }
    }

    /// Like [`Graph::encode`] but builds the dictionary and encodes the
    /// triples on `threads` workers. Output is byte-identical to the serial
    /// path at any thread count (see [`crate::parallel`] for why).
    pub fn encode_with_threads(mut self, threads: usize) -> EncodedGraph {
        self.finish();
        let dict = crate::parallel::build_dictionary_parallel(&self.triples, threads);
        let triples = crate::parallel::encode_triples_parallel(&dict, &self.triples, threads);
        EncodedGraph { dict, triples }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph::from_triples(iter.into_iter().collect())
    }
}

/// A dictionary-encoded graph: the substrate the BitMat store is built from.
#[derive(Debug, Clone, Default)]
pub struct EncodedGraph {
    /// The term ↔ ID mapping.
    pub dict: Dictionary,
    /// Distinct encoded triples (sorted by the raw `Triple` order of the
    /// source graph, not by ID).
    pub triples: Vec<EncodedTriple>,
}

impl EncodedGraph {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn dedup_on_finish() {
        let g = Graph::from_triples(vec![t("a", "p", "b"), t("a", "p", "b"), t("a", "p", "c")]);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn encode_preserves_triple_count() {
        let g = Graph::from_triples(vec![t("a", "p", "b"), t("b", "p", "a")]);
        let eg = g.encode();
        assert_eq!(eg.len(), 2);
        // a and b are both subjects and objects → shared coordinates, and the
        // two triples are mirror images.
        let t0 = eg.triples[0];
        let t1 = eg.triples[1];
        assert_eq!(t0.s, t1.o);
        assert_eq!(t0.o, t1.s);
    }

    #[test]
    fn from_iterator() {
        let g: Graph = (0..5).map(|i| t(&format!("s{i}"), "p", "o")).collect();
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn empty_graph_encodes() {
        let eg = Graph::new().encode();
        assert!(eg.is_empty());
        assert_eq!(eg.dict.n_subjects(), 0);
    }
}
