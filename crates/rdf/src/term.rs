//! RDF terms: IRIs, literals, and blank nodes.

use std::fmt;

/// An RDF term.
///
/// RDF graphs contain no NULLs (paper §2.2): blank nodes are ordinary
/// entities with their own identifiers, and NULL only appears in *query
/// results* as the marker produced by an unmatched OPTIONAL pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// A blank node, stored without the leading `_:`.
    BlankNode(String),
    /// A literal with optional datatype IRI or language tag.
    Literal {
        /// The lexical form, unescaped.
        lexical: String,
        /// Datatype IRI, if any (mutually exclusive with `lang` per RDF 1.1;
        /// enforced by the constructors, not the type).
        datatype: Option<String>,
        /// Language tag, if any.
        lang: Option<String>,
    },
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Creates a blank-node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Creates a plain (untyped, untagged) literal.
    pub fn literal(lexical: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            lang: None,
        }
    }

    /// Creates a typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: Some(datatype.into()),
            lang: None,
        }
    }

    /// Creates a language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            lang: Some(lang.into()),
        }
    }

    /// Creates an `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Term::typed_literal(value.to_string(), crate::ntriples::XSD_INTEGER)
    }

    /// Returns `true` if the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns `true` if the term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// Returns `true` if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// The lexical form for literals, the IRI string for IRIs, the label for
    /// blank nodes. Useful for FILTER evaluation and display.
    pub fn lexical_form(&self) -> &str {
        match self {
            Term::Iri(v) => v,
            Term::BlankNode(v) => v,
            Term::Literal { lexical, .. } => lexical,
        }
    }

    /// Attempts to interpret the term as an integer (for FILTER arithmetic).
    ///
    /// Works for any literal whose lexical form parses as `i64`; IRIs and
    /// blank nodes yield `None`.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Term::Literal { lexical, .. } => lexical.parse().ok(),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    /// Displays the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => write!(f, "<{v}>"),
            Term::BlankNode(v) => write!(f, "_:{v}"),
            Term::Literal {
                lexical,
                datatype,
                lang,
            } => {
                write!(f, "\"{}\"", crate::ntriples::escape_literal(lexical))?;
                if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                } else if let Some(l) = lang {
                    write!(f, "@{l}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        assert!(Term::iri("http://ex/a").is_iri());
        assert!(Term::blank("b0").is_blank());
        assert!(Term::literal("x").is_literal());
        assert!(!Term::literal("x").is_iri());
        assert!(!Term::iri("a").is_blank());
    }

    #[test]
    fn display_is_ntriples() {
        assert_eq!(Term::iri("http://ex/a").to_string(), "<http://ex/a>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#integer").to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::lang_literal("hi", "en").to_string(), "\"hi\"@en");
    }

    #[test]
    fn display_escapes_literals() {
        assert_eq!(
            Term::literal("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn integer_literal_roundtrip() {
        let t = Term::integer(-42);
        assert_eq!(t.as_integer(), Some(-42));
        assert_eq!(Term::iri("x").as_integer(), None);
        assert_eq!(Term::literal("nope").as_integer(), None);
    }

    #[test]
    fn lexical_form_covers_all_variants() {
        assert_eq!(Term::iri("i").lexical_form(), "i");
        assert_eq!(Term::blank("b").lexical_form(), "b");
        assert_eq!(Term::literal("l").lexical_form(), "l");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Term::literal("z"), Term::iri("a"), Term::blank("m")];
        v.sort();
        // Enum discriminant order: Iri < BlankNode < Literal.
        assert_eq!(v[0], Term::iri("a"));
        assert_eq!(v[1], Term::blank("m"));
        assert_eq!(v[2], Term::literal("z"));
    }
}
