//! Raw and dictionary-encoded triples.

use crate::term::Term;
use crate::Id;
use std::fmt;

/// A raw RDF triple over [`Term`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject (IRI or blank node in standard RDF; we do not enforce this so
    /// generators may use literals freely in tests).
    pub s: Term,
    /// Predicate (IRI).
    pub p: Term,
    /// Object (any term).
    pub o: Term,
}

impl Triple {
    /// Creates a triple.
    pub fn new(s: Term, p: Term, o: Term) -> Self {
        Triple { s, p, o }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// A dictionary-encoded triple: coordinates into the 3-D bitcube of §4.
///
/// `s` indexes the subject dimension, `p` the predicate dimension, and `o`
/// the object dimension of the bitcube. Because `Vso = Vs ∩ Vo` terms share
/// coordinates (Appendix D), an S-O join is `left.o == right.s` on raw IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EncodedTriple {
    /// Subject coordinate.
    pub s: Id,
    /// Predicate coordinate.
    pub p: Id,
    /// Object coordinate.
    pub o: Id,
}

impl EncodedTriple {
    /// Creates an encoded triple.
    pub fn new(s: Id, p: Id, o: Id) -> Self {
        EncodedTriple { s, p, o }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_display() {
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::literal("o"));
        assert_eq!(t.to_string(), "<s> <p> \"o\" .");
    }

    #[test]
    fn encoded_triple_is_copy_and_ordered() {
        let a = EncodedTriple::new(0, 1, 2);
        let b = a; // Copy
        assert_eq!(a, b);
        assert!(EncodedTriple::new(0, 0, 1) < EncodedTriple::new(0, 1, 0));
    }
}
