//! [`EngineKind`]: the closed set of executors plus uniform construction.
//!
//! Everything that compares engines — `lbr-cli --engine`, the benches,
//! the equivalence tests — goes through this enum instead of hand-rolled
//! string matching, so adding an engine is a one-file change.

use crate::pairwise::{JoinOrder, PairwiseEngine};
use crate::reference::{evaluate_reference, Semantics};
use crate::reordered::ReorderedEngine;
use lbr_bitmat::Catalog;
use lbr_core::api::Engine;
use lbr_core::{LbrEngine, LbrError, QueryOutput};
use lbr_rdf::Dictionary;
use lbr_sparql::algebra::Query;
use std::fmt;
use std::str::FromStr;

/// The executors of the §6 evaluation, plus the reference oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The Left Bit Right engine (semi-join pruning + multi-way join).
    Lbr,
    /// Pairwise hash joins, inner joins reordered by selectivity
    /// (Virtuoso-analog).
    PairwiseSelectivity,
    /// Pairwise hash joins in strict query order (MonetDB-analog).
    PairwiseQueryOrder,
    /// Outer-join reordering repaired by nullification + best-match
    /// (Rao et al. / Galindo-Legaria, §3.1).
    Reordered,
    /// The nested-loop SPARQL-algebra oracle (slow; correctness only).
    Reference,
}

/// Construction knobs that individual engines honor.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Intermediate-row budget for the pairwise engines (`None` =
    /// unbounded); exceeding it aborts with `LbrError::ResourceLimit`.
    pub row_limit: Option<usize>,
    /// Join semantics of the reference oracle.
    pub semantics: Semantics,
    /// Worker threads for engines with intra-query parallelism (the LBR
    /// multi-way join's root partitioning). Defaults to the machine's
    /// available parallelism; `1` is the exact serial path. Results are
    /// byte-identical at every thread count.
    pub threads: usize,
    /// Execution deadline, honored by the LBR engine: evaluation past
    /// this instant aborts with [`LbrError::DeadlineExceeded`] — the
    /// multi-way join polls it on the quota seam so timed-out queries
    /// stop enumerating seeds promptly. The baseline engines ignore it
    /// (they exist for offline comparison, not serving).
    pub deadline: Option<std::time::Instant>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            row_limit: None,
            semantics: Semantics::Sparql,
            threads: lbr_core::api::default_threads(),
            deadline: None,
        }
    }
}

impl EngineKind {
    /// Every kind, in the order the paper's tables list them.
    pub const fn all() -> [EngineKind; 5] {
        [
            EngineKind::Lbr,
            EngineKind::PairwiseSelectivity,
            EngineKind::PairwiseQueryOrder,
            EngineKind::Reordered,
            EngineKind::Reference,
        ]
    }

    /// The stable name (what [`EngineKind::from_name`] parses).
    pub const fn name(self) -> &'static str {
        match self {
            EngineKind::Lbr => "lbr",
            EngineKind::PairwiseSelectivity => "pairwise",
            EngineKind::PairwiseQueryOrder => "query-order",
            EngineKind::Reordered => "reordered",
            EngineKind::Reference => "reference",
        }
    }

    /// Parses a kind from its name (accepts a few aliases).
    pub fn from_name(s: &str) -> Option<EngineKind> {
        match s {
            "lbr" => Some(EngineKind::Lbr),
            "pairwise" | "pairwise-selectivity" | "virtuoso" => {
                Some(EngineKind::PairwiseSelectivity)
            }
            "query-order" | "pairwise-query-order" | "monetdb" => {
                Some(EngineKind::PairwiseQueryOrder)
            }
            "reordered" | "reorder" => Some(EngineKind::Reordered),
            "reference" | "oracle" => Some(EngineKind::Reference),
            _ => None,
        }
    }

    /// Builds the engine over a catalog + dictionary with default options.
    pub fn build<'a, C: Catalog>(
        self,
        catalog: &'a C,
        dict: &'a Dictionary,
    ) -> Box<dyn Engine + 'a> {
        self.build_with(catalog, dict, &EngineOptions::default())
    }

    /// Builds the engine with explicit [`EngineOptions`].
    pub fn build_with<'a, C: Catalog>(
        self,
        catalog: &'a C,
        dict: &'a Dictionary,
        options: &EngineOptions,
    ) -> Box<dyn Engine + 'a> {
        match self {
            EngineKind::Lbr => Box::new(
                LbrEngine::new(catalog, dict)
                    .with_threads(options.threads)
                    .with_deadline(options.deadline),
            ),
            EngineKind::PairwiseSelectivity | EngineKind::PairwiseQueryOrder => {
                let order = if self == EngineKind::PairwiseSelectivity {
                    JoinOrder::Selectivity
                } else {
                    JoinOrder::QueryOrder
                };
                let mut engine = PairwiseEngine::new(catalog, dict, order);
                if let Some(limit) = options.row_limit {
                    engine = engine.with_row_limit(limit);
                }
                Box::new(engine)
            }
            EngineKind::Reordered => Box::new(ReorderedEngine::new(catalog, dict)),
            EngineKind::Reference => Box::new(ReferenceEngine {
                catalog,
                dict,
                semantics: options.semantics,
            }),
        }
    }
}

// Every engine this seam can build is shared across server worker threads
// behind `Box<dyn Engine>`; `Engine: Send + Sync` makes that a trait
// obligation, and these assertions pin the concrete types over both
// catalog backends so a future non-sync field fails here, loudly.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<LbrEngine<'static, lbr_bitmat::BitMatStore>>();
    assert_send_sync::<LbrEngine<'static, lbr_bitmat::DiskCatalog>>();
    assert_send_sync::<PairwiseEngine<'static, lbr_bitmat::BitMatStore>>();
    assert_send_sync::<PairwiseEngine<'static, lbr_bitmat::DiskCatalog>>();
    assert_send_sync::<ReorderedEngine<'static, lbr_bitmat::BitMatStore>>();
    assert_send_sync::<ReorderedEngine<'static, lbr_bitmat::DiskCatalog>>();
    assert_send_sync::<ReferenceEngine<'static, lbr_bitmat::BitMatStore>>();
    assert_send_sync::<ReferenceEngine<'static, lbr_bitmat::DiskCatalog>>();
    assert_send_sync::<dyn Engine>();
};

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::from_name(s).ok_or_else(|| {
            let names: Vec<&str> = EngineKind::all().iter().map(|k| k.name()).collect();
            format!(
                "unknown engine '{s}' (expected one of: {})",
                names.join(", ")
            )
        })
    }
}

/// The nested-loop SPARQL-algebra oracle behind the [`Engine`] seam.
pub struct ReferenceEngine<'a, C: Catalog> {
    catalog: &'a C,
    dict: &'a Dictionary,
    semantics: Semantics,
}

impl<'a, C: Catalog> ReferenceEngine<'a, C> {
    /// Creates the oracle with the given join semantics.
    pub fn new(catalog: &'a C, dict: &'a Dictionary, semantics: Semantics) -> Self {
        ReferenceEngine {
            catalog,
            dict,
            semantics,
        }
    }
}

impl<C: Catalog> Engine for ReferenceEngine<'_, C> {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn dict(&self) -> &Dictionary {
        self.dict
    }

    fn execute_raw(&self, query: &Query) -> Result<QueryOutput, LbrError> {
        let rel = evaluate_reference(query, self.dict, self.catalog, self.semantics)?;
        Ok(crate::relation_to_output(rel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in EngineKind::all() {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.name().parse::<EngineKind>(), Ok(kind));
        }
        assert!(EngineKind::from_name("no-such-engine").is_none());
        assert!("no-such-engine".parse::<EngineKind>().is_err());
    }

    #[test]
    fn aliases() {
        assert_eq!(
            EngineKind::from_name("virtuoso"),
            Some(EngineKind::PairwiseSelectivity)
        );
        assert_eq!(
            EngineKind::from_name("monetdb"),
            Some(EngineKind::PairwiseQueryOrder)
        );
        assert_eq!(EngineKind::from_name("oracle"), Some(EngineKind::Reference));
    }
}
