//! Relations and hash-join operators for the baseline engines.

use lbr_core::bindings::Binding;

/// A named-column relation; cells are `None` for NULLs produced by
/// left-outer joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Column names (variable names without `?`).
    pub vars: Vec<String>,
    /// Rows; each as long as `vars`.
    pub rows: Vec<Vec<Option<Binding>>>,
}

impl Relation {
    /// An empty relation with no columns and one empty row (the join
    /// identity: joining with it is a no-op).
    pub fn unit() -> Relation {
        Relation {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// An empty relation over the given columns (zero rows).
    pub fn empty(vars: Vec<String>) -> Relation {
        Relation {
            vars,
            rows: Vec::new(),
        }
    }

    /// Index of a column.
    pub fn col(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// Projects the relation onto `names` (missing columns become NULL).
    pub fn project(&self, names: &[String]) -> Relation {
        let cols: Vec<Option<usize>> = names.iter().map(|n| self.col(n)).collect();
        Relation {
            vars: names.to_vec(),
            rows: self
                .rows
                .iter()
                .map(|r| cols.iter().map(|c| c.and_then(|i| r[i])).collect())
                .collect(),
        }
    }
}

/// Join kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Inner join (⋈).
    Inner,
    /// Left-outer join (⟕).
    LeftOuter,
}

/// Hash join of two relations on their shared columns. Null-intolerant on
/// the key (a NULL key matches nothing) — the SQL semantics of Appendix C;
/// well-designed queries never put NULLs on a join key.
pub fn hash_join(left: &Relation, right: &Relation, kind: Kind) -> Relation {
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| right.col(v).map(|j| (i, j)))
        .collect();
    let right_only: Vec<usize> = (0..right.vars.len())
        .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
        .collect();

    let mut vars = left.vars.clone();
    vars.extend(right_only.iter().map(|&j| right.vars[j].clone()));

    let mut table: std::collections::HashMap<Vec<Binding>, Vec<usize>> =
        std::collections::HashMap::new();
    for (idx, row) in right.rows.iter().enumerate() {
        if let Some(key) = shared
            .iter()
            .map(|&(_, j)| row[j])
            .collect::<Option<Vec<Binding>>>()
        {
            table.entry(key).or_default().push(idx);
        }
    }

    let cross: Vec<usize> = (0..right.rows.len()).collect();
    let empty: Vec<usize> = Vec::new();
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let matches: &[usize] = if shared.is_empty() {
            &cross
        } else {
            match shared
                .iter()
                .map(|&(i, _)| lrow[i])
                .collect::<Option<Vec<Binding>>>()
            {
                Some(key) => table.get(&key).unwrap_or(&empty),
                None => &empty,
            }
        };
        if matches.is_empty() {
            if kind == Kind::LeftOuter {
                let mut row = lrow.clone();
                row.extend(right_only.iter().map(|_| None));
                rows.push(row);
            }
        } else {
            for &m in matches {
                let mut row = lrow.clone();
                row.extend(right_only.iter().map(|&j| right.rows[m][j]));
                rows.push(row);
            }
        }
    }
    Relation { vars, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_core::bindings::BindingSpace;

    fn b(id: u32) -> Option<Binding> {
        Some(Binding {
            id,
            space: BindingSpace::Shared,
        })
    }

    fn rel(vars: &[&str], rows: Vec<Vec<Option<Binding>>>) -> Relation {
        Relation {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    #[test]
    fn inner_join_on_shared() {
        let l = rel(&["x", "y"], vec![vec![b(1), b(2)], vec![b(3), b(4)]]);
        let r = rel(&["y", "z"], vec![vec![b(2), b(9)], vec![b(2), b(8)]]);
        let out = hash_join(&l, &r, Kind::Inner);
        assert_eq!(out.vars, vec!["x", "y", "z"]);
        let mut rows = out.rows;
        rows.sort();
        assert_eq!(rows, vec![vec![b(1), b(2), b(8)], vec![b(1), b(2), b(9)]]);
    }

    #[test]
    fn left_outer_pads_with_null() {
        let l = rel(&["x"], vec![vec![b(1)], vec![b(2)]]);
        let r = rel(&["x", "y"], vec![vec![b(1), b(7)]]);
        let out = hash_join(&l, &r, Kind::LeftOuter);
        let mut rows = out.rows;
        rows.sort();
        assert_eq!(rows, vec![vec![b(1), b(7)], vec![b(2), None]]);
    }

    #[test]
    fn cross_product_when_disjoint() {
        let l = rel(&["x"], vec![vec![b(1)], vec![b(2)]]);
        let r = rel(&["y"], vec![vec![b(8)], vec![b(9)]]);
        assert_eq!(hash_join(&l, &r, Kind::Inner).rows.len(), 4);
    }

    #[test]
    fn null_keys_never_match() {
        let l = rel(&["x", "y"], vec![vec![b(1), None]]);
        let r = rel(&["y", "z"], vec![vec![None, b(5)], vec![b(2), b(6)]]);
        assert!(hash_join(&l, &r, Kind::Inner).rows.is_empty());
        let out = hash_join(&l, &r, Kind::LeftOuter);
        assert_eq!(out.rows, vec![vec![b(1), None, None]]);
    }

    #[test]
    fn unit_is_join_identity() {
        let l = rel(&["x"], vec![vec![b(1)]]);
        let out = hash_join(&Relation::unit(), &l, Kind::Inner);
        assert_eq!(out.rows, vec![vec![b(1)]]);
    }

    #[test]
    fn projection() {
        let l = rel(&["x", "y"], vec![vec![b(1), b(2)]]);
        let p = l.project(&["y".to_string(), "w".to_string()]);
        assert_eq!(p.rows, vec![vec![b(2), None]]);
        assert_eq!(Relation::empty(vec!["a".into()]).rows.len(), 0);
    }
}
