//! The outer-join **reordering** baseline of §3.1 (Rao et al. [38, 39],
//! Galindo-Legaria & Rosenthal [26]): evaluate triple patterns in
//! selectivity order regardless of OPTIONAL nesting, then repair the damage
//! with **nullification** (restore binding consistency with the original
//! join order) and **best-match** (drop subsumed rows).
//!
//! This engine exists (a) to reproduce the Figure 3.2 worked example —
//! `Res1` (reordered join), `Res2` (after nullification), `Res3` (after
//! best-match) — and (b) as the ablation baseline showing what LBR's
//! minimality guarantee saves: LBR prunes *before* joining and never needs
//! the repair operators on acyclic queries.

use crate::hash_join::{hash_join, Kind, Relation};
use crate::scan::scan_tp;
use lbr_bitmat::Catalog;
use lbr_core::best_match::best_match;
use lbr_core::bindings::Binding;
use lbr_core::LbrError;
use lbr_rdf::{Dictionary, Dimension};
use lbr_sparql::algebra::Query;
use lbr_sparql::classify::analyze;
use lbr_sparql::gosn::Gosn;

/// Trace of the three stages, mirroring Figure 3.2.
#[derive(Debug, Clone)]
pub struct ReorderTrace {
    /// Rows right after the reordered pairwise joins ("Res1").
    pub after_join: Relation,
    /// Rows after nullification ("Res2").
    pub after_nullification: Relation,
    /// Final rows after best-match ("Res3").
    pub after_best_match: Relation,
}

/// The reordering + nullification + best-match engine.
pub struct ReorderedEngine<'a, C: Catalog> {
    catalog: &'a C,
    dict: &'a Dictionary,
}

impl<'a, C: Catalog> ReorderedEngine<'a, C> {
    /// Creates the engine.
    pub fn new(catalog: &'a C, dict: &'a Dictionary) -> Self {
        ReorderedEngine { catalog, dict }
    }

    /// Executes a query's WHERE pattern (rows over the execution schema —
    /// the query form and modifiers are applied by the shared `Engine`
    /// seam). UNION queries are rewritten to UNION normal form and
    /// evaluated branch-by-branch.
    pub fn execute(&self, query: &Query) -> Result<Relation, LbrError> {
        let projection = query.exec_vars();
        let branches = lbr_sparql::rewrite::rewrite_to_unf(&query.pattern);
        let any_rule3 = branches.iter().any(|b| b.used_rule3);
        let rels: Vec<Relation> = branches
            .iter()
            .map(|b| Ok(self.eval_traced(&b.pattern)?.after_best_match))
            .collect::<Result<_, LbrError>>()?;
        if any_rule3 {
            // Rule (3)'s minimum union is defined over the branches' full
            // schemas: align onto the union of the branch variables,
            // best-match there, and only then project — projecting first
            // could erase a column that distinguishes two rows.
            let mut full_vars: Vec<String> = Vec::new();
            for rel in &rels {
                for v in &rel.vars {
                    if !full_vars.contains(v) {
                        full_vars.push(v.clone());
                    }
                }
            }
            let mut full = Relation::empty(full_vars.clone());
            for rel in &rels {
                full.rows.extend(rel.project(&full_vars).rows);
            }
            best_match(&mut full.rows);
            Ok(full.project(&projection))
        } else {
            let mut out = Relation::empty(projection.clone());
            for rel in &rels {
                out.rows.extend(rel.project(&projection).rows);
            }
            Ok(out)
        }
    }

    /// Executes a UNION-free query, exposing all three stages (projected
    /// onto the query's variables).
    pub fn execute_traced(&self, query: &Query) -> Result<ReorderTrace, LbrError> {
        let projection = query.projected_vars();
        let t = self.eval_traced(&query.pattern)?;
        Ok(ReorderTrace {
            after_join: t.after_join.project(&projection),
            after_nullification: t.after_nullification.project(&projection),
            after_best_match: t.after_best_match.project(&projection),
        })
    }

    /// The three-stage pipeline over one union-free pattern.
    fn eval_traced(&self, pattern: &lbr_sparql::GraphPattern) -> Result<ReorderTrace, LbrError> {
        let analyzed = analyze(pattern)?;
        let gosn = analyzed.gosn;
        let est: Vec<u64> = gosn
            .tps()
            .iter()
            .map(|tp| lbr_core::selectivity::estimated_count(tp, self.dict, self.catalog))
            .collect();

        // Reordered plan: absolute-master TPs by ascending selectivity,
        // then greedily the most selective TP connected to what is already
        // joined — slaves join via ⟕ wherever they land (the reordering
        // the original nesting forbids).
        let mut remaining: Vec<usize> = (0..gosn.n_tps()).collect();
        remaining.sort_by_key(|&tp| (!gosn.tp_in_absolute_master(tp) as u8, est[tp], tp));
        let mut order: Vec<usize> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let connected = |tp: usize| {
                order.is_empty()
                    || gosn
                        .tp(tp)
                        .vars()
                        .iter()
                        .any(|v| order.iter().any(|&p| gosn.tp(p).has_var(v)))
            };
            let pos = remaining.iter().position(|&tp| connected(tp)).unwrap_or(0);
            order.push(remaining.remove(pos));
        }

        let mut acc = scan_tp(gosn.tp(order[0]), self.dict, self.catalog)?;
        for &tp in &order[1..] {
            let rel = scan_tp(gosn.tp(tp), self.dict, self.catalog)?;
            let kind = if gosn.tp_in_absolute_master(tp) {
                Kind::Inner
            } else {
                Kind::LeftOuter
            };
            acc = hash_join(&acc, &rel, kind);
        }
        // Filters: absolute-master and global filters drop rows; slave
        // supernode filters participate in the nullification check below.
        // Supernode filters are evaluated *scoped*: only variables
        // occurring in a TP of that supernode are visible, matching the
        // reference oracle's compositional evaluation.
        let vars = acc.vars.clone();
        // Per-supernode filter scopes depend only on the query: compute
        // them once, not per row inside the nullification fixpoint.
        let sn_scopes: Vec<Vec<String>> = (0..gosn.n_supernodes())
            .map(|sn| {
                if gosn.sn_filters(sn).is_empty() {
                    Vec::new()
                } else {
                    sn_scope(&gosn, sn)
                }
            })
            .collect();
        for (sn, scope) in sn_scopes.iter().enumerate() {
            if !gosn.is_absolute_master(sn) {
                continue;
            }
            for e in gosn.sn_filters(sn) {
                acc.rows
                    .retain(|row| self.filter_row(e, row, &vars, Some(scope)));
            }
        }
        let after_join = acc.clone();

        // Nullification: per row, a slave supernode whose TPs no longer
        // hold under the original nesting loses its exclusive bindings.
        for row in acc.rows.iter_mut() {
            self.nullify_row(row, &acc.vars, &gosn, &sn_scopes)?;
        }
        // Global filters see the repaired (post-nullification) rows — they
        // apply to the value of the whole pattern.
        for e in gosn.global_filters() {
            acc.rows.retain(|row| self.filter_row(e, row, &vars, None));
        }
        let after_nullification = acc.clone();

        let mut rows = acc.rows;
        best_match(&mut rows);
        let after_best_match = Relation {
            vars: acc.vars.clone(),
            rows,
        };
        Ok(ReorderTrace {
            after_join,
            after_nullification,
            after_best_match,
        })
    }

    /// Marks failed supernodes (TP not matching the row under the original
    /// nesting) and NULLs every variable held only by failed supernodes;
    /// iterates to a fixpoint so failures cascade down the hierarchy.
    fn nullify_row(
        &self,
        row: &mut [Option<Binding>],
        vars: &[String],
        gosn: &Gosn,
        sn_scopes: &[Vec<String>],
    ) -> Result<(), LbrError> {
        let col = |v: &str| vars.iter().position(|x| x == v);
        let mut failed = vec![false; gosn.n_supernodes()];
        loop {
            let mut changed = false;
            #[allow(clippy::needless_range_loop)] // `failed` is mutated via `sn` below
            for sn in 0..gosn.n_supernodes() {
                if failed[sn] || gosn.is_absolute_master(sn) {
                    continue;
                }
                let holds = gosn
                    .tps_of_sn(sn)
                    .iter()
                    .all(|&tp| self.tp_holds(gosn, tp, row, &col).unwrap_or(false))
                    && gosn
                        .sn_filters(sn)
                        .iter()
                        .all(|e| self.filter_row(e, row, vars, Some(&sn_scopes[sn])));
                if !holds {
                    failed[sn] = true;
                    changed = true;
                }
            }
            if changed {
                // Peer groups fail as a unit.
                for sn in 0..failed.len() {
                    if failed[sn] {
                        for p in gosn.peers_of(sn) {
                            failed[p] = true;
                        }
                    }
                }
                // NULL variables that no surviving supernode still binds.
                for (i, name) in vars.iter().enumerate() {
                    if row[i].is_none() {
                        continue;
                    }
                    let held = (0..gosn.n_tps())
                        .any(|tp| !failed[gosn.sn_of_tp(tp)] && gosn.tp(tp).has_var(name));
                    if !held {
                        row[i] = None;
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Evaluates a filter over a row. With `scope`, only the listed
    /// variables are visible — the supernode scope of §5.2 — and any
    /// other variable reads as unbound.
    fn filter_row(
        &self,
        e: &lbr_sparql::algebra::Expr,
        row: &[Option<Binding>],
        vars: &[String],
        scope: Option<&[String]>,
    ) -> bool {
        struct Lk<'a> {
            vars: &'a [String],
            row: &'a [Option<Binding>],
            dict: &'a Dictionary,
            scope: Option<&'a [String]>,
        }
        impl lbr_core::filter_eval::VarLookup for Lk<'_> {
            fn term(&self, name: &str) -> Option<&lbr_rdf::Term> {
                if let Some(scope) = self.scope {
                    if !scope.iter().any(|v| v == name) {
                        return None;
                    }
                }
                let i = self.vars.iter().position(|v| v == name)?;
                self.row[i].as_ref().map(|b| b.decode(self.dict))
            }
        }
        lbr_core::filter_eval::eval(
            e,
            &Lk {
                vars,
                row,
                dict: self.dict,
                scope,
            },
        )
    }

    /// Does the row's binding of this TP correspond to an existing triple?
    fn tp_holds(
        &self,
        gosn: &Gosn,
        tp_id: usize,
        row: &[Option<Binding>],
        col: &dyn Fn(&str) -> Option<usize>,
    ) -> Option<bool> {
        let tp = gosn.tp(tp_id);
        let resolve = |t: &lbr_sparql::algebra::TermPattern, dim: Dimension| -> Option<u32> {
            match t {
                lbr_sparql::algebra::TermPattern::Var(v) => {
                    let b = row[col(v)?]?;
                    b.probes(dim).then_some(b.id)
                }
                lbr_sparql::algebra::TermPattern::Const(c) => self.dict.id(c, dim),
            }
        };
        let s = resolve(&tp.s, Dimension::Subject)?;
        let p = resolve(&tp.p, Dimension::Predicate)?;
        let o = resolve(&tp.o, Dimension::Object)?;
        let hit = self
            .catalog
            .load_po_row(s, p)
            .ok()?
            .is_some_and(|r| r.contains(o));
        Some(hit)
    }
}

/// Variables occurring in a TP of `sn` — the visibility scope of that
/// supernode's filters.
fn sn_scope(gosn: &Gosn, sn: usize) -> Vec<String> {
    let mut vars: Vec<String> = Vec::new();
    for &tp in gosn.tps_of_sn(sn) {
        for v in gosn.tp(tp).vars() {
            if !vars.iter().any(|x| x == v) {
                vars.push(v.to_string());
            }
        }
    }
    vars
}

impl<C: Catalog> lbr_core::api::Engine for ReorderedEngine<'_, C> {
    fn name(&self) -> &'static str {
        "reordered"
    }

    fn dict(&self) -> &Dictionary {
        self.dict
    }

    fn execute_raw(&self, query: &Query) -> Result<lbr_core::QueryOutput, LbrError> {
        Ok(crate::relation_to_output(ReorderedEngine::execute(
            self, query,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::parse_query;

    fn figure_3_2() -> (lbr_rdf::EncodedGraph, BitMatStore) {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let g = Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode();
        let s = BitMatStore::build(&g);
        (g, s)
    }

    /// The full Figure 3.2 pipeline: Res1 (5 rows), Res2 (nullified), Res3
    /// = {(Julia, Seinfeld), (Larry, NULL)}.
    #[test]
    fn figure_3_2_res1_res2_res3() {
        let (g, st) = figure_3_2();
        let q = parse_query(
            "PREFIX : <> SELECT ?friend ?sitcom WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
        )
        .unwrap();
        let engine = ReorderedEngine::new(&st, &g.dict);
        let trace = engine.execute_traced(&q).unwrap();

        // Res1: the reordered (tp1 ⟕ tp2) ⟕ tp3 exposes all of Julia's
        // sitcoms and Larry's CurbYourEnthu.
        assert_eq!(trace.after_join.rows.len(), 5);

        // Res2: same cardinality, but inconsistent ?sitcom bindings are
        // nullified (Veep, NewAdvOldChristine, CurbYourEnthu → NULL).
        let fs = |rel: &Relation| -> Vec<Vec<Option<String>>> {
            let mut rows: Vec<Vec<Option<String>>> = rel
                .project(&["friend".to_string(), "sitcom".to_string()])
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|b| b.map(|x| x.decode(&g.dict).lexical_form().to_string()))
                        .collect()
                })
                .collect();
            rows.sort();
            rows
        };
        let res2 = fs(&trace.after_nullification);
        assert_eq!(res2.len(), 5);
        assert_eq!(res2.iter().filter(|r| r[1].is_none()).count(), 4);
        assert!(res2.contains(&vec![Some("Julia".into()), Some("Seinfeld".into())]));

        // Res3: best-match removes the subsumed rows.
        let res3 = fs(&trace.after_best_match);
        assert_eq!(
            res3,
            vec![
                vec![Some("Julia".into()), Some("Seinfeld".into())],
                vec![Some("Larry".into()), None],
            ]
        );
    }
}
