//! The correctness oracle: a literal, slow implementation of the SPARQL
//! algebra over solution mappings (Pérez et al.), with both semantics of
//! Appendix C:
//!
//! * [`Semantics::Sparql`] — compatible mappings: two solutions are
//!   compatible when they agree on the variables *bound in both*; an
//!   unbound variable is compatible with anything (ARQ/Jena behaviour);
//! * [`Semantics::NullIntolerant`] — SQL behaviour (Virtuoso/MonetDB):
//!   every variable shared by the two operands' *schemas* must be bound on
//!   both sides and equal; NULLs never join.
//!
//! Well-designed queries produce identical results under both (the paper's
//! focus); the non-well-designed Appendix B/C examples differ.

use crate::hash_join::Relation;
use crate::scan::scan_tp;
use lbr_bitmat::Catalog;
use lbr_core::bindings::Binding;
use lbr_core::filter_eval::{self, VarLookup};
use lbr_core::LbrError;
use lbr_rdf::{Dictionary, Term};
use lbr_sparql::algebra::{GraphPattern, Query};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Join semantics over NULLs (Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// SPARQL compatible-mappings semantics.
    Sparql,
    /// SQL null-intolerant semantics.
    NullIntolerant,
}

type Map = BTreeMap<String, Binding>;

/// Evaluates a query's WHERE pattern against the catalog with the chosen
/// semantics, returning rows over the execution schema
/// (`Query::exec_vars`); forms and modifiers are applied by the shared
/// `Engine` seam.
pub fn evaluate_reference(
    query: &Query,
    dict: &Dictionary,
    catalog: &impl Catalog,
    semantics: Semantics,
) -> Result<Relation, LbrError> {
    let maps = eval(&query.pattern, dict, catalog, semantics)?;
    let vars = query.exec_vars();
    Ok(Relation {
        rows: maps
            .iter()
            .map(|m| vars.iter().map(|v| m.get(v).copied()).collect())
            .collect(),
        vars,
    })
}

fn eval(
    p: &GraphPattern,
    dict: &Dictionary,
    catalog: &impl Catalog,
    sem: Semantics,
) -> Result<Vec<Map>, LbrError> {
    match p {
        GraphPattern::Bgp(tps) => {
            let mut acc: Vec<Map> = vec![Map::new()];
            for tp in tps {
                let rel = scan_tp(tp, dict, catalog)?;
                let mut next = Vec::new();
                for m in &acc {
                    for row in &rel.rows {
                        let mut candidate = m.clone();
                        let mut ok = true;
                        for (i, v) in rel.vars.iter().enumerate() {
                            let b = row[i].expect("scans never produce NULL");
                            match candidate.get(v) {
                                Some(&prev) if prev != b => {
                                    ok = false;
                                    break;
                                }
                                _ => {
                                    candidate.insert(v.clone(), b);
                                }
                            }
                        }
                        if ok {
                            next.push(candidate);
                        }
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
        GraphPattern::Join(l, r) => {
            let (ls, rs) = (schema(l), schema(r));
            let lm = eval(l, dict, catalog, sem)?;
            let rm = eval(r, dict, catalog, sem)?;
            let mut out = Vec::new();
            for a in &lm {
                for b in &rm {
                    if compatible(a, b, &ls, &rs, sem) {
                        out.push(merge(a, b));
                    }
                }
            }
            Ok(out)
        }
        GraphPattern::LeftJoin(l, r) => {
            let (ls, rs) = (schema(l), schema(r));
            let lm = eval(l, dict, catalog, sem)?;
            let rm = eval(r, dict, catalog, sem)?;
            let mut out = Vec::new();
            for a in &lm {
                let mut matched = false;
                for b in &rm {
                    if compatible(a, b, &ls, &rs, sem) {
                        matched = true;
                        out.push(merge(a, b));
                    }
                }
                if !matched {
                    out.push(a.clone());
                }
            }
            Ok(out)
        }
        GraphPattern::Union(l, r) => {
            let mut out = eval(l, dict, catalog, sem)?;
            out.extend(eval(r, dict, catalog, sem)?);
            Ok(out)
        }
        GraphPattern::Filter(inner, e) => {
            let maps = eval(inner, dict, catalog, sem)?;
            Ok(maps
                .into_iter()
                .filter(|m| {
                    let lk = MapLookup { map: m, dict };
                    filter_eval::eval(e, &lk)
                })
                .collect())
        }
    }
}

fn schema(p: &GraphPattern) -> BTreeSet<String> {
    p.variables().into_iter().map(|s| s.to_string()).collect()
}

fn compatible(
    a: &Map,
    b: &Map,
    schema_a: &BTreeSet<String>,
    schema_b: &BTreeSet<String>,
    sem: Semantics,
) -> bool {
    match sem {
        Semantics::Sparql => a.iter().all(|(v, x)| b.get(v).is_none_or(|y| y == x)),
        Semantics::NullIntolerant => schema_a
            .intersection(schema_b)
            .all(|v| matches!((a.get(v), b.get(v)), (Some(x), Some(y)) if x == y)),
    }
}

fn merge(a: &Map, b: &Map) -> Map {
    let mut m = a.clone();
    for (k, v) in b {
        m.entry(k.clone()).or_insert(*v);
    }
    m
}

struct MapLookup<'a> {
    map: &'a Map,
    dict: &'a Dictionary,
}

impl VarLookup for MapLookup<'_> {
    fn term(&self, name: &str) -> Option<&Term> {
        self.map.get(name).map(|b| b.decode(self.dict))
    }
}

/// Convenience: evaluates an [`Expr`]-free pattern and renders lexical
/// forms for test assertions.
pub fn rendered_rows(rel: &Relation, dict: &Dictionary) -> Vec<Vec<Option<String>>> {
    let mut rows: Vec<Vec<Option<String>>> = rel
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|b| b.map(|x| x.decode(dict).lexical_form().to_string()))
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Triple};
    use lbr_sparql::parse_query;

    fn store() -> (lbr_rdf::EncodedGraph, BitMatStore) {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let g = Graph::from_triples(vec![
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Julia", "actedIn", "Seinfeld"),
            t("Seinfeld", "location", "NewYorkCity"),
        ])
        .encode();
        let s = BitMatStore::build(&g);
        (g, s)
    }

    #[test]
    fn well_designed_identical_under_both_semantics() {
        let (g, st) = store();
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
               OPTIONAL { ?f :actedIn ?s . ?s :location :NewYorkCity . } }",
        )
        .unwrap();
        let a = evaluate_reference(&q, &g.dict, &st, Semantics::Sparql).unwrap();
        let b = evaluate_reference(&q, &g.dict, &st, Semantics::NullIntolerant).unwrap();
        assert_eq!(rendered_rows(&a, &g.dict), rendered_rows(&b, &g.dict));
        assert_eq!(a.rows.len(), 2);
    }

    /// Appendix C's counter-intuitive NWD case: joining over a variable
    /// that one side leaves unbound differs across semantics.
    #[test]
    fn nwd_differs_across_semantics() {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let g = Graph::from_triples(vec![
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Julia", "actedIn", "Seinfeld"),
            t("Friends", "location", "NewYorkCity"),
            t("Seinfeld", "location", "NewYorkCity"),
        ])
        .encode();
        let st = BitMatStore::build(&g);
        // { {?f OPTIONAL ?s} {?s location NYC} }: ?s join over a possibly
        // unbound variable — non-well-designed.
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE {
               { :Jerry :hasFriend ?f . OPTIONAL { ?f :actedIn ?s . } }
               { ?s :location :NewYorkCity . } }",
        )
        .unwrap();
        let sparql = evaluate_reference(&q, &g.dict, &st, Semantics::Sparql).unwrap();
        let sql = evaluate_reference(&q, &g.dict, &st, Semantics::NullIntolerant).unwrap();
        // SPARQL: Larry's unbound ?s is compatible with both locations →
        // (Larry, Friends), (Larry, Seinfeld), plus (Julia, Seinfeld).
        assert_eq!(sparql.rows.len(), 3);
        // SQL: Larry's NULL never joins → only (Julia, Seinfeld).
        assert_eq!(sql.rows.len(), 1);
    }
}
