//! The conventional pairwise executor (Virtuoso / MonetDB stand-in).
//!
//! Evaluates the pattern tree bottom-up with pairwise hash joins. Inner
//! joins inside a BGP may be reordered by selectivity
//! ([`JoinOrder::Selectivity`]) or kept in query order
//! ([`JoinOrder::QueryOrder`]); **left-outer joins are never reordered** —
//! they evaluate exactly in OPTIONAL nesting order, which is the
//! restriction the paper's engines live under (§1). Consequently a
//! low-selectivity OPTIONAL side is fully materialized before its master
//! restricts it — the cost LBR's semi-join pruning avoids.

use crate::hash_join::{hash_join, Kind, Relation};
use crate::scan::scan_tp;
use lbr_bitmat::Catalog;
use lbr_core::filter_eval::{self, VarLookup};
use lbr_core::LbrError;
use lbr_rdf::{Dictionary, Term};
use lbr_sparql::algebra::{GraphPattern, Query, TriplePattern};

/// Inner-join ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrder {
    /// Selectivity-ordered left-deep joins (Virtuoso-analog).
    Selectivity,
    /// Strict query order (MonetDB-analog).
    QueryOrder,
}

/// The pairwise hash-join engine.
pub struct PairwiseEngine<'a, C: Catalog> {
    catalog: &'a C,
    dict: &'a Dictionary,
    order: JoinOrder,
    row_limit: usize,
}

impl<'a, C: Catalog> PairwiseEngine<'a, C> {
    /// Creates an engine with the given inner-join ordering policy.
    pub fn new(catalog: &'a C, dict: &'a Dictionary, order: JoinOrder) -> Self {
        PairwiseEngine {
            catalog,
            dict,
            order,
            row_limit: usize::MAX,
        }
    }

    /// Bounds intermediate result cardinality; exceeding it aborts the
    /// query with [`LbrError::ResourceLimit`] — the harness's stand-in for
    /// the paper's ">30 min" timeout entries.
    pub fn with_row_limit(mut self, limit: usize) -> Self {
        self.row_limit = limit;
        self
    }

    fn guard(&self, rel: Relation) -> Result<Relation, LbrError> {
        if rel.rows.len() > self.row_limit {
            return Err(LbrError::ResourceLimit(format!(
                "intermediate result of {} rows exceeds the {}-row budget",
                rel.rows.len(),
                self.row_limit
            )));
        }
        Ok(rel)
    }

    /// Executes a query's WHERE pattern, returning a relation over the
    /// execution schema (projection plus ORDER BY keys); the query form
    /// and modifiers are applied by the shared `Engine` seam.
    pub fn execute(&self, query: &Query) -> Result<Relation, LbrError> {
        let rel = self.eval(&query.pattern)?;
        Ok(rel.project(&query.exec_vars()))
    }

    /// Evaluates a pattern tree.
    pub fn eval(&self, pattern: &GraphPattern) -> Result<Relation, LbrError> {
        match pattern {
            GraphPattern::Bgp(tps) => self.eval_bgp(tps),
            GraphPattern::Join(l, r) => {
                self.guard(hash_join(&self.eval(l)?, &self.eval(r)?, Kind::Inner))
            }
            GraphPattern::LeftJoin(l, r) => {
                self.guard(hash_join(&self.eval(l)?, &self.eval(r)?, Kind::LeftOuter))
            }
            GraphPattern::Union(l, r) => {
                let a = self.eval(l)?;
                let b = self.eval(r)?;
                // Bag union over the union of the schemas.
                let mut vars = a.vars.clone();
                for v in &b.vars {
                    if !vars.contains(v) {
                        vars.push(v.clone());
                    }
                }
                let mut out = a.project(&vars);
                out.rows.extend(b.project(&vars).rows);
                Ok(out)
            }
            GraphPattern::Filter(inner, e) => {
                let mut rel = self.eval(inner)?;
                let vars = rel.vars.clone();
                rel.rows.retain(|row| {
                    let lk = RowLookup {
                        vars: &vars,
                        row,
                        dict: self.dict,
                    };
                    filter_eval::eval(e, &lk)
                });
                Ok(rel)
            }
        }
    }

    fn eval_bgp(&self, tps: &[TriplePattern]) -> Result<Relation, LbrError> {
        if tps.is_empty() {
            return Ok(Relation::unit());
        }
        let order: Vec<usize> = match self.order {
            JoinOrder::QueryOrder => (0..tps.len()).collect(),
            JoinOrder::Selectivity => {
                let est: Vec<u64> = tps
                    .iter()
                    .map(|tp| lbr_core::selectivity::estimated_count(tp, self.dict, self.catalog))
                    .collect();
                let mut idx: Vec<usize> = (0..tps.len()).collect();
                // Left-deep: most selective first, then greedily prefer TPs
                // connected to what is already joined (avoids accidental
                // cross products).
                idx.sort_by_key(|&i| (est[i], i));
                let mut picked: Vec<usize> = Vec::with_capacity(idx.len());
                let mut remaining = idx;
                while !remaining.is_empty() {
                    let pos = remaining
                        .iter()
                        .position(|&i| {
                            picked.is_empty()
                                || tps[i]
                                    .vars()
                                    .iter()
                                    .any(|v| picked.iter().any(|&p| tps[p].has_var(v)))
                        })
                        .unwrap_or(0);
                    picked.push(remaining.remove(pos));
                }
                picked
            }
        };
        let mut acc = scan_tp(&tps[order[0]], self.dict, self.catalog)?;
        for &i in &order[1..] {
            let next = scan_tp(&tps[i], self.dict, self.catalog)?;
            acc = self.guard(hash_join(&acc, &next, Kind::Inner))?;
        }
        Ok(acc)
    }
}

impl<C: Catalog> lbr_core::api::Engine for PairwiseEngine<'_, C> {
    fn name(&self) -> &'static str {
        match self.order {
            JoinOrder::Selectivity => "pairwise",
            JoinOrder::QueryOrder => "query-order",
        }
    }

    fn dict(&self) -> &Dictionary {
        self.dict
    }

    fn execute_raw(&self, query: &Query) -> Result<lbr_core::QueryOutput, LbrError> {
        Ok(crate::relation_to_output(PairwiseEngine::execute(
            self, query,
        )?))
    }
}

struct RowLookup<'a> {
    vars: &'a [String],
    row: &'a [Option<lbr_core::bindings::Binding>],
    dict: &'a Dictionary,
}

impl VarLookup for RowLookup<'_> {
    fn term(&self, name: &str) -> Option<&Term> {
        let i = self.vars.iter().position(|v| v == name)?;
        self.row[i].as_ref().map(|b| b.decode(self.dict))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Triple};
    use lbr_sparql::parse_query;

    fn store() -> (lbr_rdf::EncodedGraph, BitMatStore) {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let g = Graph::from_triples(vec![
            t("Julia", "actedIn", "Seinfeld"),
            t("Julia", "actedIn", "Veep"),
            t("Julia", "actedIn", "NewAdvOldChristine"),
            t("Julia", "actedIn", "CurbYourEnthu"),
            t("CurbYourEnthu", "location", "LosAngeles"),
            t("Larry", "actedIn", "CurbYourEnthu"),
            t("Jerry", "hasFriend", "Julia"),
            t("Jerry", "hasFriend", "Larry"),
            t("Seinfeld", "location", "NewYorkCity"),
            t("Veep", "location", "D.C."),
            t("NewAdvOldChristine", "location", "Jersey"),
        ])
        .encode();
        let s = BitMatStore::build(&g);
        (g, s)
    }

    #[test]
    fn q2_results_match_the_paper() {
        let (g, st) = store();
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
        )
        .unwrap();
        for order in [JoinOrder::Selectivity, JoinOrder::QueryOrder] {
            let engine = PairwiseEngine::new(&st, &g.dict, order);
            let rel = engine.execute(&q).unwrap();
            let mut rows: Vec<Vec<Option<String>>> = rel
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|b| b.map(|x| x.decode(&g.dict).lexical_form().to_string()))
                        .collect()
                })
                .collect();
            rows.sort();
            assert_eq!(
                rows,
                vec![
                    vec![Some("Julia".into()), Some("Seinfeld".into())],
                    vec![Some("Larry".into()), None],
                ]
            );
        }
    }

    #[test]
    fn filters_and_unions() {
        let (g, st) = store();
        let q = parse_query(
            "PREFIX : <> SELECT * WHERE {
               { ?f :actedIn ?s . ?s :location :NewYorkCity . }
               UNION { ?f :actedIn ?s . ?s :location :LosAngeles . } }",
        )
        .unwrap();
        let engine = PairwiseEngine::new(&st, &g.dict, JoinOrder::Selectivity);
        let rel = engine.execute(&q).unwrap();
        assert_eq!(rel.rows.len(), 3, "Seinfeld + 2×CurbYourEnthu actors");
    }
}
