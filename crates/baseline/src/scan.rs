//! Per-TP scans from the BitMat catalog — the leaf operator of the
//! baseline engines. Both baselines read the same indexes LBR does, so the
//! evaluation compares executors, not storage.

use crate::hash_join::Relation;
use lbr_bitmat::Catalog;
use lbr_core::bindings::Binding;
use lbr_core::LbrError;
use lbr_rdf::{Dictionary, Dimension};
use lbr_sparql::algebra::{TermPattern, TriplePattern};

fn const_id(dict: &Dictionary, t: &TermPattern, dim: Dimension) -> Option<u32> {
    t.as_const().and_then(|c| dict.id(c, dim))
}

/// Scans all triples matching a TP into a relation over the TP's variables.
pub fn scan_tp(
    tp: &TriplePattern,
    dict: &Dictionary,
    catalog: &impl Catalog,
) -> Result<Relation, LbrError> {
    let dims = catalog.dims();
    let n_shared = dims.n_shared;
    let vars: Vec<String> = tp.vars().iter().map(|v| v.to_string()).collect();
    let mut rel = Relation {
        vars: vars.clone(),
        rows: Vec::new(),
    };

    let sv = tp.s.as_var();
    let pv = tp.p.as_var();
    let ov = tp.o.as_var();
    let s_id = const_id(dict, &tp.s, Dimension::Subject);
    let p_id = const_id(dict, &tp.p, Dimension::Predicate);
    let o_id = const_id(dict, &tp.o, Dimension::Object);
    // A fixed term unknown to the dictionary matches nothing.
    if (sv.is_none() && s_id.is_none())
        || (pv.is_none() && p_id.is_none())
        || (ov.is_none() && o_id.is_none())
    {
        return Ok(rel);
    }

    let b = |id: u32, dim: Dimension| Some(Binding::new(id, dim, n_shared));
    match (sv, pv, ov) {
        (None, None, None) => {
            let hit = catalog
                .load_po_row(s_id.unwrap(), p_id.unwrap())?
                .is_some_and(|row| row.contains(o_id.unwrap()));
            if hit {
                rel.rows.push(Vec::new());
            }
        }
        (Some(_), None, None) => {
            if let Some(row) = catalog.load_ps_row(o_id.unwrap(), p_id.unwrap())? {
                for s in row.iter_ones() {
                    rel.rows.push(vec![b(s, Dimension::Subject)]);
                }
            }
        }
        (None, None, Some(_)) => {
            if let Some(row) = catalog.load_po_row(s_id.unwrap(), p_id.unwrap())? {
                for o in row.iter_ones() {
                    rel.rows.push(vec![b(o, Dimension::Object)]);
                }
            }
        }
        (Some(s), None, Some(o)) if s != o => {
            if let Some(mat) = catalog.load_so(p_id.unwrap())? {
                for (r, c) in mat.iter() {
                    rel.rows
                        .push(vec![b(r, Dimension::Subject), b(c, Dimension::Object)]);
                }
            }
        }
        // (?x p ?x): diagonal.
        (Some(_), None, Some(_)) => {
            if let Some(mat) = catalog.load_so(p_id.unwrap())? {
                for (r, c) in mat.iter() {
                    if r == c && r < n_shared {
                        rel.rows.push(vec![b(r, Dimension::Subject)]);
                    }
                }
            }
        }
        (None, Some(p), Some(o)) if p != o => {
            if let Some(mat) = catalog.load_po(s_id.unwrap())? {
                for (r, c) in mat.iter() {
                    rel.rows
                        .push(vec![b(r, Dimension::Predicate), b(c, Dimension::Object)]);
                }
            }
        }
        (Some(s), Some(p), None) if p != s => {
            if let Some(mat) = catalog.load_ps(o_id.unwrap())? {
                for (r, c) in mat.iter() {
                    rel.rows
                        .push(vec![b(r, Dimension::Predicate), b(c, Dimension::Subject)]);
                }
            }
        }
        (None, Some(_), None) => {
            if let Some(mat) = catalog.load_po(s_id.unwrap())? {
                let o = o_id.unwrap();
                for (r, c) in mat.iter() {
                    if c == o {
                        rel.rows.push(vec![b(r, Dimension::Predicate)]);
                    }
                }
            }
        }
        (Some(s), Some(p), Some(o)) if s != p && p != o && s != o => {
            // Full scan: enumerate per predicate (extension beyond the
            // paper, mirrored by the LBR engine's Unsupported error — the
            // baselines support it so the oracle can cover more ground).
            for pid in 0..dims.n_predicates {
                if let Some(mat) = catalog.load_so(pid)? {
                    for (r, c) in mat.iter() {
                        rel.rows.push(vec![
                            b(r, Dimension::Subject),
                            b(pid, Dimension::Predicate),
                            b(c, Dimension::Object),
                        ]);
                    }
                }
            }
        }
        (Some(_), Some(_), Some(_)) | (None, Some(_), Some(_)) | (Some(_), Some(_), None) => {
            return Err(LbrError::Unsupported(format!(
                "repeated variable across P and S/O positions: {tp}"
            )));
        }
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_bitmat::BitMatStore;
    use lbr_rdf::{Graph, Term, Triple};
    use lbr_sparql::algebra::TermPattern;

    fn pat(s: &str, p: &str, o: &str) -> TriplePattern {
        let f = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Term::iri(x))
            }
        };
        TriplePattern::new(f(s), f(p), f(o))
    }

    fn store() -> (lbr_rdf::EncodedGraph, BitMatStore) {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        let g = Graph::from_triples(vec![
            t("a", "p", "b"),
            t("a", "p", "c"),
            t("b", "q", "c"),
            t("a", "r", "a"),
        ])
        .encode();
        let s = BitMatStore::build(&g);
        (g, s)
    }

    #[test]
    fn scan_shapes() {
        let (g, st) = store();
        assert_eq!(
            scan_tp(&pat("?s", "p", "?o"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            2
        );
        assert_eq!(
            scan_tp(&pat("a", "p", "?o"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            2
        );
        assert_eq!(
            scan_tp(&pat("?s", "p", "c"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            1
        );
        assert_eq!(
            scan_tp(&pat("a", "?x", "?y"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            3
        );
        assert_eq!(
            scan_tp(&pat("?s", "?x", "c"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            2
        );
        assert_eq!(
            scan_tp(&pat("a", "?x", "c"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            1
        );
        assert_eq!(
            scan_tp(&pat("a", "p", "b"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            1
        );
        assert_eq!(
            scan_tp(&pat("a", "p", "zz"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            0
        );
        assert_eq!(
            scan_tp(&pat("?s", "?p", "?o"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            4
        );
        // Diagonal (?x r ?x).
        assert_eq!(
            scan_tp(&pat("?x", "r", "?x"), &g.dict, &st)
                .unwrap()
                .rows
                .len(),
            1
        );
    }
}
