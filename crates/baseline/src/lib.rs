//! # lbr-baseline
//!
//! The comparator engines of the LBR evaluation (§6), built over the same
//! BitMat catalog so differences are purely executional:
//!
//! * [`PairwiseEngine`] — a conventional relational executor: per-TP scans,
//!   pairwise **hash joins**, left-outer joins evaluated in the query's
//!   OPTIONAL nesting order (outer joins are *not* reordered — the
//!   restriction LBR lifts).
//!   * [`JoinOrder::Selectivity`] reorders inner joins by selectivity —
//!     the Virtuoso-analog configuration;
//!   * [`JoinOrder::QueryOrder`] evaluates strictly in query order —
//!     the MonetDB-analog configuration (per-predicate-table plans);
//! * [`ReorderedEngine`] — the §3.1 state of the art LBR improves on
//!   (Rao et al. / Galindo-Legaria): left-outer joins are aggressively
//!   reordered by selectivity, then **nullification** restores consistency
//!   and **best-match** removes subsumed rows;
//! * [`reference`] — a deliberately simple nested-loop evaluator of the
//!   SPARQL algebra used as the correctness oracle in tests, with both
//!   SPARQL (compatible-mappings) and SQL (null-intolerant) semantics
//!   (Appendix C).

#![forbid(unsafe_code)]

pub mod hash_join;
pub mod kind;
pub mod pairwise;
pub mod reference;
pub mod reordered;
pub mod scan;

pub use hash_join::Relation;
pub use kind::{EngineKind, EngineOptions, ReferenceEngine};
pub use pairwise::{JoinOrder, PairwiseEngine};
pub use reference::{evaluate_reference, Semantics};
pub use reordered::ReorderedEngine;

use lbr_core::{QueryOutput, QueryStats};

/// Lifts a baseline [`Relation`] into the shared [`QueryOutput`] shape
/// (the baselines have no phase timings, so only the result counters of
/// [`QueryStats`] are populated).
pub fn relation_to_output(rel: Relation) -> QueryOutput {
    let stats = QueryStats {
        n_results: rel.rows.len(),
        n_results_with_nulls: rel
            .rows
            .iter()
            .filter(|r| r.iter().any(|c| c.is_none()))
            .count(),
        ..Default::default()
    };
    QueryOutput {
        vars: rel.vars,
        rows: rel.rows,
        stats,
    }
}
