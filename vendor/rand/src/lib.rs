//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides the exact surface the workspace uses: a seeded
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension with `random_range` / `random_bool`. The generator is a
//! SplitMix64 — statistically fine for synthetic data generation and
//! benchmarks, deterministic for a given seed, and *not* cryptographic.

use std::ops::Range;

/// Seeded construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value methods the workspace uses.
pub trait RngExt {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `[range.start, range.end)`. Panics on an empty
    /// range, like `rand` does.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Integer types `random_range` can sample.
pub trait UniformInt: Copy {
    /// Maps a raw 64-bit draw into `[range.start, range.end)`.
    fn sample(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(raw: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range on empty range");
                let span = (range.end - range.start) as u64;
                range.start + (raw % span) as Self
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(raw: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range on empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                range.start.wrapping_add((raw % span) as Self)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// A deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.random_range(3u32..17);
            assert_eq!(x, b.random_range(3u32..17));
            assert!((3..17).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(42);
        assert!((0..50).all(|_| !rng.random_bool(0.0)));
        assert!((0..50).all(|_| rng.random_bool(1.0)));
        let hits = (0..2000).filter(|_| rng.random_bool(0.25)).count();
        assert!((300..700).contains(&hits), "~25% expected, got {hits}");
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
