//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides the API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a plain
//! wall-clock mean over an adaptively chosen iteration count — no
//! statistics, plots or comparisons, but the benches compile, run and
//! print usable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ≳1ms so per-call overhead is amortized.
        let mut batch = 1u32;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 10;

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    println!("{name:<50} {:>12.2?}/iter", b.mean());
}

impl Criterion {
    /// Runs one named benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new<S: Display, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Declares a benchmark group function running the given targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 3), &5u32, |b, &x| {
            b.iter(|| black_box(x + 1));
        });
        group.finish();
    }
}
