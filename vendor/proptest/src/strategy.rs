//! Value-generation strategies and combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `gen_value` produces a value
/// directly from the deterministic [`TestRng`].
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self.boxed();
        BoxedStrategy::generator(move |rng| f(inner.gen_value(rng)))
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// previous depth, up to `depth` levels deep. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: impl Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            // Mixing in the base at every level makes trees of varying
            // depth rather than always-maximal ones.
            let deeper = recurse(current).boxed();
            current = Union::new(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_gen(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> BoxedStrategy<T> {
    pub(crate) fn generator(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        struct FnStrategy<G>(G);
        impl<T: 'static, G: Fn(&mut TestRng) -> T + 'static> Strategy for FnStrategy<G> {
            type Value = T;
            fn gen_value(&self, rng: &mut TestRng) -> T {
                (self.0)(rng)
            }
        }
        FnStrategy(f).boxed()
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T: 'static> Union<T> {
    /// Builds a union from weighted arms (weights must not all be zero).
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` — the full value range of `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                BoxedStrategy::generator(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        BoxedStrategy::generator(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].gen_value(rng))
    }
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// `&'static str` patterns like `"[a-z]{1,6}"` generate matching strings.
///
/// Supported: a sequence of atoms, each a literal character or a `[...]`
/// character class (ranges and `\`-escapes), optionally followed by `{n}`
/// or `{m,n}`. This covers the patterns used in this workspace's tests —
/// not general regular expressions.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.in_range(atom.min as u64, atom.max as u64 + 1) as u32;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match it.next() {
                        None => panic!("unterminated [class] in pattern {pat:?}"),
                        Some(']') => break,
                        Some('\\') => {
                            let e = it.next().expect("escape at end of class");
                            set.push(e);
                            prev = Some(e);
                        }
                        Some('-') if prev.is_some() && it.peek().is_some_and(|&x| x != ']') => {
                            let hi = it.next().unwrap();
                            let lo = prev.take().unwrap();
                            // `lo` is already in the set; add the rest.
                            for u in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(u) {
                                    set.push(ch);
                                }
                            }
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                set
            }
            '\\' => vec![it.next().expect("escape at end of pattern")],
            other => vec![other],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            for ch in it.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n = spec.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!chars.is_empty(), "empty character class in {pat:?}");
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps() {
        let mut rng = TestRng::new(1);
        for _ in 0..50 {
            let x = (3u32..9).gen_value(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = ((0usize..4), (10i64..12)).gen_value(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
        let doubled = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..20 {
            assert_eq!(doubled.gen_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            let s = "[a-z]{1,6}".gen_value(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z][a-zA-Z0-9_]{0,3}".gen_value(&mut rng);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());
            assert!(t.chars().count() <= 4);
        }
    }

    #[test]
    fn unions_respect_weights() {
        let mut rng = TestRng::new(3);
        let u = Union::new(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let ones = (0..1000).filter(|_| u.gen_value(&mut rng) == 1).count();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }

    #[test]
    fn recursion_terminates_and_varies() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(x) => {
                    let _ = x;
                    0
                }
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::new(4);
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 3);
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth >= 2, "recursion never went deep");
    }
}
