//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate implements the subset of proptest this workspace uses:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and `boxed`;
//! * strategies for integer ranges, tuples, `any::<T>()`, [`strategy::Just`],
//!   simple `[class]{m,n}`-style string patterns, and
//!   [`collection::vec`] / [`collection::btree_set`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assume!`] and [`prop_oneof!`] macros;
//! * a deterministic [`test_runner`] (fixed per-test seeds, no shrinking).
//!
//! Failures report the failing case number and message; re-running is fully
//! deterministic, which substitutes for shrinking at this codebase's test
//! sizes.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The strategies namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Runs a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, ys in prop::collection::vec(0u8..4, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)+
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    __outcome
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks one of several strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
