//! Deterministic case generation and the test loop.

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — regenerate, don't count the case.
    Reject,
    /// `prop_assert*!` failed — the property is falsified.
    Fail(String),
}

/// Result type property bodies are wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. `cases` and `max_global_rejects` are honored;
/// `max_shrink_iters` exists for API compatibility (there is no
/// shrinking) and so that `..ProptestConfig::default()` struct updates
/// stay meaningful, as with the real crate's non-exhaustive config.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
    /// Accepted but unused — this runner does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A default configuration with a different case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// The deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi)` as u64 arithmetic.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

fn seed_of(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `f` until `config.cases` cases pass; panics on the first failure
/// or when `prop_assume!` rejects more than `max_global_rejects` times.
pub fn run(config: &ProptestConfig, name: &str, f: impl Fn(&mut TestRng) -> TestCaseResult) {
    let mut rng = TestRng::new(seed_of(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: prop_assume! rejected {rejected} cases \
                     (max_global_rejects = {}) with only {passed}/{} passed",
                    config.max_global_rejects,
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property falsified after {passed} passing case(s) \
                     (deterministic seed {:#x}):\n{msg}",
                    seed_of(name)
                );
            }
        }
    }
}
