//! Collection strategies (`prop::collection::*`).

use crate::strategy::{BoxedStrategy, Strategy};
use std::collections::BTreeSet;
use std::ops::Range;

/// A `Vec` of values with a length drawn from `len` (`[start, end)`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S::Value: 'static,
{
    assert!(len.start < len.end, "empty length range");
    let element = element.boxed();
    BoxedStrategy::generator(move |rng| {
        let n = rng.in_range(len.start as u64, len.end as u64) as usize;
        (0..n).map(|_| element.gen_value(rng)).collect()
    })
}

/// A `BTreeSet` with a target size drawn from `len` (`[start, end)`).
///
/// Like real proptest under a small value universe, the set may come out
/// smaller than the target when duplicates are drawn; insertion attempts
/// are capped to keep generation linear.
pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BoxedStrategy<BTreeSet<S::Value>>
where
    S::Value: Ord + 'static,
{
    assert!(len.start < len.end, "empty length range");
    let element = element.boxed();
    BoxedStrategy::generator(move |rng| {
        let target = rng.in_range(len.start as u64, len.end as u64) as usize;
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 4 + 8 {
            out.insert(element.gen_value(rng));
            attempts += 1;
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_lengths_in_range() {
        let strat = vec(0u8..5, 2..7);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_unique_and_bounded() {
        let strat = btree_set(0u32..10, 0..8);
        let mut rng = TestRng::new(10);
        for _ in 0..100 {
            let s = strat.gen_value(&mut rng);
            assert!(s.len() < 8);
            assert!(s.iter().all(|&x| x < 10));
        }
    }
}
