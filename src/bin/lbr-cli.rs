//! `lbr-cli` — run SPARQL BGP/OPTIONAL queries over an N-Triples file.
//!
//! ```sh
//! lbr-cli data.nt 'SELECT * WHERE { ?s <p> ?o . OPTIONAL { ?o <q> ?x . } }'
//! lbr-cli data.nt --file query.rq --engine pairwise
//! lbr-cli data.nt --explain 'SELECT * WHERE { … }'
//! lbr-cli data.nt --save-index data.lbr     # build + persist the BitMat index
//! lbr-cli data.nt --index data.lbr 'SELECT …'  # query the on-disk index lazily
//!
//! # SPARQL 1.1 Update against a write-ahead log (replayed on every run):
//! lbr-cli update data.nt --wal-dir wal/ 'INSERT DATA { <s> <p> <o> }'
//! lbr-cli update data.nt --wal-dir wal/ --update-file changes.ru
//! lbr-cli data.nt --wal-dir wal/ 'SELECT * WHERE { ?s ?p ?o }'  # sees the updates
//! ```
//!
//! Options: `--engine lbr|pairwise|query-order|reordered|reference`
//! (default lbr), `--threads N` (worker threads for the multi-way join's
//! root partitioning; default: available parallelism, `1` = exact serial
//! path, results identical either way), `--format table|json|tsv`
//! (default table; `json` is W3C SPARQL 1.1 Query Results JSON, `tsv` the
//! W3C TSV format — both consumable by standard tooling), `--explain`
//! (print the plan instead of executing), `--analyze` (EXPLAIN ANALYZE:
//! execute the query and print the plan annotated with actual per-stage
//! timings and estimated-vs-actual cardinalities; implies `--explain`),
//! `--stats`, `--repeat N` (re-run
//! the query N times through the shared plan cache — planning runs once,
//! repeats hit the cache — and report the average plus the cache's
//! hit/miss/eviction counters), `--file <query.rq>`,
//! `--save-index <path>`, `--index <path>`.
//!
//! The `update` subcommand executes a SPARQL 1.1 Update request
//! (`INSERT DATA` / `DELETE DATA` / `DELETE WHERE`, `;`-sequences)
//! against the WAL named by `--wal-dir`: the base `.nt` file is loaded,
//! the log's committed updates are replayed over it, the new request is
//! applied and journalled (fsynced before the process exits), and the
//! outcome — triples inserted, deleted, and the resulting epoch — is
//! printed. A later run (query or update) with the same `--wal-dir`
//! reopens to exactly the committed state, even after a crash.
//!
//! The full query spec is supported: `SELECT [DISTINCT|REDUCED]` / `ASK`
//! with `ORDER BY` / `LIMIT` / `OFFSET` (`ASK` prints `true`/`false`).
//! Every engine goes through the same [`lbr::Engine`] dispatch and the
//! same result rendering — there is no per-engine result handling.

#![forbid(unsafe_code)]

use lbr::bitmat::disk::save_store;
use lbr::{Database, EngineKind, OutputFormat, PlanCache};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    update_mode: bool,
    data: Option<String>,
    index: Option<String>,
    save_index: Option<String>,
    wal_dir: Option<String>,
    query: Option<String>,
    query_file: Option<String>,
    update_file: Option<String>,
    engine: EngineKind,
    threads: Option<usize>,
    format: OutputFormat,
    explain: bool,
    analyze: bool,
    stats: bool,
    repeat: u32,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        update_mode: false,
        data: None,
        index: None,
        save_index: None,
        wal_dir: None,
        query: None,
        query_file: None,
        update_file: None,
        engine: EngineKind::Lbr,
        threads: None,
        format: OutputFormat::Table,
        explain: false,
        analyze: false,
        stats: false,
        repeat: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                let name = args.next().ok_or("--engine needs a value")?;
                o.engine = name.parse()?;
            }
            "--format" => {
                let name = args.next().ok_or("--format needs a value")?;
                o.format = OutputFormat::from_name(&name)
                    .ok_or_else(|| format!("unknown format '{name}' (table, json or tsv)"))?;
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a value")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("bad --threads value '{n}'"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                o.threads = Some(n);
            }
            "--file" => o.query_file = Some(args.next().ok_or("--file needs a value")?),
            "--update-file" => {
                o.update_file = Some(args.next().ok_or("--update-file needs a value")?)
            }
            "--wal-dir" => o.wal_dir = Some(args.next().ok_or("--wal-dir needs a value")?),
            "--index" => o.index = Some(args.next().ok_or("--index needs a value")?),
            "--save-index" => o.save_index = Some(args.next().ok_or("--save-index needs a value")?),
            "--repeat" => {
                let n = args.next().ok_or("--repeat needs a value")?;
                o.repeat = n.parse().map_err(|_| format!("bad --repeat value '{n}'"))?;
                if o.repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            "--explain" => o.explain = true,
            "--analyze" => {
                // EXPLAIN ANALYZE: implies --explain, executes the query.
                o.explain = true;
                o.analyze = true;
            }
            "--stats" => o.stats = true,
            "--help" | "-h" => return Err("help".into()),
            "update" if !o.update_mode && o.data.is_none() && o.query.is_none() => {
                o.update_mode = true
            }
            _ if o.data.is_none() && a.ends_with(".nt") => o.data = Some(a),
            _ if o.query.is_none() => o.query = Some(a),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(o)
}

fn usage() {
    let engines: Vec<&str> = EngineKind::all().iter().map(|k| k.name()).collect();
    eprintln!(
        "usage: lbr-cli <data.nt> [QUERY] [--file query.rq] [--engine {}] \
         [--threads N] [--format table|json|tsv] [--explain] [--analyze] [--stats] \
         [--repeat N] [--save-index path] [--index path.lbr] [--wal-dir dir]\n\
         \x20      lbr-cli update <data.nt> --wal-dir dir [UPDATE] [--update-file changes.ru]",
        engines.join("|")
    );
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            if e == "help" {
                usage();
                return ExitCode::from(2);
            }
            eprintln!("error: {e}");
            if e.contains("usage") || e.contains("unexpected") || e.contains("no ") {
                usage();
            }
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;

    // Assemble the database: N-Triples data, optionally backed by the
    // lazily-read on-disk index.
    let mut builder = Database::builder().engine(opts.engine);
    if let Some(threads) = opts.threads {
        builder = builder.threads(threads);
    }
    match &opts.data {
        Some(path) => builder = builder.ntriples_file(path),
        None => {
            if opts.index.is_some() {
                return Err(
                    "--index needs the matching .nt file too (it provides the dictionary)".into(),
                );
            }
            return Err("no input data".into());
        }
    }
    if let Some(index_path) = &opts.index {
        if opts.save_index.is_some() {
            return Err(
                "--save-index builds the in-memory index and cannot be combined with --index \
                 (which reads one lazily from disk)"
                    .into(),
            );
        }
        builder = builder.disk_index(index_path);
    }
    if let Some(wal_dir) = &opts.wal_dir {
        // Query and update runs alike replay the log: the database opens
        // to base data + every committed update.
        builder = builder.wal_dir(wal_dir);
    }
    let db = builder.build().map_err(|e| e.to_string())?;

    if opts.update_mode {
        if opts.wal_dir.is_none() {
            return Err(
                "update needs --wal-dir: without a write-ahead log the change would die \
                 with this process"
                    .into(),
            );
        }
        let text = match (&opts.query, &opts.update_file) {
            (Some(u), None) => u.clone(),
            (None, Some(f)) => {
                std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?
            }
            (Some(_), Some(_)) => {
                return Err("give the update inline or via --update-file, not both".into())
            }
            (None, None) => return Err("no update given (inline or --update-file)".into()),
        };
        let before = db.epoch();
        let outcome = db.update(&text).map_err(|e| e.to_string())?;
        println!(
            "inserted {} triples, deleted {}, epoch {} -> {}",
            outcome.inserted, outcome.deleted, before, outcome.epoch
        );
        eprintln!("{} triples total", db.len());
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(out_path) = &opts.save_index {
        let bytes = save_store(db.store(), Path::new(out_path)).map_err(|e| e.to_string())?;
        eprintln!("index written: {out_path} ({bytes} bytes)");
        if opts.query.is_none() && opts.query_file.is_none() {
            return Ok(ExitCode::SUCCESS);
        }
    }

    // The query text.
    let text = match (&opts.query, &opts.query_file) {
        (Some(q), _) => q.clone(),
        (None, Some(f)) => {
            std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?
        }
        (None, None) => return Err("no query given".into()),
    };

    if opts.explain {
        let rendered = if opts.analyze {
            // EXPLAIN ANALYZE executes the query under a forced trace and
            // annotates the plan with actual timings and cardinalities.
            db.explain_analyze(&text)
        } else {
            db.explain(&text)
        };
        println!("{}", rendered.map_err(|e| e.to_string())?);
        return Ok(ExitCode::SUCCESS);
    }

    // Executions go through a plan cache — the same seam `lbr-server`
    // serves from. Planning runs once here, *outside* the timing, so the
    // reported average measures pure re-execution exactly like the old
    // prepared-query path; every timed round below is a cache hit.
    let cache = PlanCache::new(4);
    let cached = cache
        .get_or_prepare(&db, &text)
        .map_err(|e| e.to_string())?;

    // Warm re-execution rounds first (timed, results dropped), then one
    // final round that streams the rows to stdout outside the timing.
    let mut total = std::time::Duration::ZERO;
    for _ in 1..opts.repeat {
        let t = Instant::now();
        db.execute_cached(&cache, &text)
            .map_err(|e| e.to_string())?;
        total += t.elapsed();
    }
    let t = Instant::now();
    let out = db
        .execute_cached(&cache, &text)
        .map_err(|e| e.to_string())?;
    total += t.elapsed();

    let stats = out.stats.clone();
    let query = cached.query();
    if query.is_ask() {
        // Boolean result: identical across formats except JSON.
        print!("{}", opts.format.render(query, &out, db.dict()));
        eprintln!("boolean result");
    } else {
        match opts.format {
            // JSON is one object; render it whole.
            OutputFormat::Json => print!("{}", opts.format.render(query, &out, db.dict())),
            // Table and TSV stream row-by-row — a multi-million-row
            // result is never re-materialized as one string.
            OutputFormat::Table | OutputFormat::Tsv => {
                let tsv = opts.format == OutputFormat::Tsv;
                let solutions = out.into_solutions(db.dict());
                if tsv {
                    println!("{}", lbr::format::tsv_header(solutions.vars()));
                } else {
                    println!("{}", solutions.vars().join("\t"));
                }
                for row in solutions {
                    if tsv {
                        println!("{}", lbr::format::tsv_line(&row.decoded()));
                    } else {
                        println!("{}", row.render());
                    }
                }
            }
        }
        eprintln!(
            "{} rows ({} with NULLs)",
            stats.n_results, stats.n_results_with_nulls
        );
    }
    if opts.stats {
        // Only the LBR engine consumes the thread setting; labelling the
        // serial baselines with it would be misleading.
        let threads_note = if opts.engine == EngineKind::Lbr {
            format!(" ({} threads)", db.threads())
        } else {
            String::new()
        };
        eprintln!(
            "engine {}{}  init {:?}  prune {:?}  join {:?}  total {:?}\n\
             candidates {} → {}  best-match required: {}\n\
             kernel: {} prune intersections, {} scratch reuses",
            opts.engine,
            threads_note,
            stats.t_init,
            stats.t_prune,
            stats.t_join,
            stats.t_total,
            stats.initial_triples,
            stats.triples_after_pruning,
            stats.nb_required,
            stats.prune_intersections,
            stats.scratch_reuses,
        );
    }
    if opts.repeat > 1 {
        let cs = cache.stats();
        eprintln!(
            "{} cached executions, avg {:?} (plan cache: {} hits / {} misses / {} evictions)",
            opts.repeat,
            total / opts.repeat,
            cs.hits,
            cs.misses,
            cs.evictions,
        );
    }
    Ok(ExitCode::SUCCESS)
}
