//! `lbr-cli` — run SPARQL BGP/OPTIONAL queries over an N-Triples file.
//!
//! ```sh
//! lbr-cli data.nt 'SELECT * WHERE { ?s <p> ?o . OPTIONAL { ?o <q> ?x . } }'
//! lbr-cli data.nt --file query.rq --engine pairwise
//! lbr-cli data.nt --explain 'SELECT * WHERE { … }'
//! lbr-cli data.nt --save-index data.lbr     # build + persist the BitMat index
//! lbr-cli --index data.lbr 'SELECT …'       # query the on-disk index lazily
//! ```
//!
//! Options: `--engine lbr|pairwise|query-order|reordered` (default lbr),
//! `--explain` (print the plan instead of executing), `--stats`,
//! `--file <query.rq>`, `--save-index <path>`, `--index <path>`.

use lbr::baseline::{JoinOrder, PairwiseEngine, ReorderedEngine};
use lbr::bitmat::disk::save_store;
use lbr::core::explain::explain;
use lbr::{parse_query, Database, DiskCatalog, LbrEngine};
use std::path::Path;
use std::process::ExitCode;

struct Options {
    data: Option<String>,
    index: Option<String>,
    save_index: Option<String>,
    query: Option<String>,
    query_file: Option<String>,
    engine: String,
    explain: bool,
    stats: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        data: None,
        index: None,
        save_index: None,
        query: None,
        query_file: None,
        engine: "lbr".into(),
        explain: false,
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => o.engine = args.next().ok_or("--engine needs a value")?,
            "--file" => o.query_file = Some(args.next().ok_or("--file needs a value")?),
            "--index" => o.index = Some(args.next().ok_or("--index needs a value")?),
            "--save-index" => o.save_index = Some(args.next().ok_or("--save-index needs a value")?),
            "--explain" => o.explain = true,
            "--stats" => o.stats = true,
            "--help" | "-h" => return Err("help".into()),
            _ if o.data.is_none() && o.index.is_none() && a.ends_with(".nt") => o.data = Some(a),
            _ if o.query.is_none() => o.query = Some(a),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(o)
}

fn usage() {
    eprintln!(
        "usage: lbr-cli <data.nt> [QUERY] [--file query.rq] \
         [--engine lbr|pairwise|query-order|reordered] [--explain] [--stats] \
         [--save-index path]\n       lbr-cli --index <path.lbr> [QUERY] …"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    // Load data (N-Triples) and/or the on-disk index.
    let db: Option<Database> = match &opts.data {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Database::from_ntriples(&text) {
                Ok(db) => Some(db),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    if let Some(out_path) = &opts.save_index {
        let Some(db) = &db else {
            eprintln!("error: --save-index needs an input .nt file");
            return ExitCode::FAILURE;
        };
        match save_store(db.store(), Path::new(out_path)) {
            Ok(bytes) => {
                eprintln!("index written: {out_path} ({bytes} bytes)");
                if opts.query.is_none() && opts.query_file.is_none() {
                    return ExitCode::SUCCESS;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The query text.
    let text = match (&opts.query, &opts.query_file) {
        (Some(q), _) => q.clone(),
        (None, Some(f)) => match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => {
            eprintln!("error: no query given");
            usage();
            return ExitCode::from(2);
        }
    };
    let query = match parse_query(&text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Querying the on-disk index lazily (LBR engine only — the disk
    // catalog needs no dictionary-backed decoding until output, so this
    // mode prints encoded IDs).
    if let Some(index_path) = &opts.index {
        let catalog = match DiskCatalog::open(Path::new(index_path)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(db) = &db else {
            eprintln!(
                "note: querying a bare index without the .nt file; \
                 results print as encoded IDs"
            );
            // Without a dictionary we cannot resolve constants; require data.
            eprintln!("error: --index currently requires the matching .nt file too");
            return ExitCode::FAILURE;
        };
        let engine = LbrEngine::new(&catalog, db.dict());
        return run_and_print(
            || engine.execute(&query).map_err(|e| e.to_string()),
            db,
            opts.stats,
        );
    }

    let Some(db) = &db else {
        eprintln!("error: no input data");
        usage();
        return ExitCode::from(2);
    };

    if opts.explain {
        match explain(&query, db.dict(), db.store()) {
            Ok(text) => {
                println!("{text}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match opts.engine.as_str() {
        "lbr" => run_and_print(
            || db.execute_query(&query).map_err(|e| e.to_string()),
            db,
            opts.stats,
        ),
        "pairwise" | "query-order" => {
            let order = if opts.engine == "pairwise" {
                JoinOrder::Selectivity
            } else {
                JoinOrder::QueryOrder
            };
            let engine = PairwiseEngine::new(db.store(), db.dict(), order);
            match engine.execute(&query) {
                Ok(rel) => {
                    println!("{}", rel.vars.join("\t"));
                    for row in &rel.rows {
                        let line: Vec<String> = row
                            .iter()
                            .map(|b| b.map_or("NULL".into(), |x| x.decode(db.dict()).to_string()))
                            .collect();
                        println!("{}", line.join("\t"));
                    }
                    eprintln!("{} rows", rel.rows.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "reordered" => {
            let engine = ReorderedEngine::new(db.store(), db.dict());
            match engine.execute(&query) {
                Ok(rel) => {
                    println!("{}", rel.vars.join("\t"));
                    for row in &rel.rows {
                        let line: Vec<String> = row
                            .iter()
                            .map(|b| b.map_or("NULL".into(), |x| x.decode(db.dict()).to_string()))
                            .collect();
                        println!("{}", line.join("\t"));
                    }
                    eprintln!("{} rows", rel.rows.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("unknown engine '{other}'");
            ExitCode::from(2)
        }
    }
}

fn run_and_print(
    run: impl FnOnce() -> Result<lbr::QueryOutput, String>,
    db: &Database,
    stats: bool,
) -> ExitCode {
    match run() {
        Ok(out) => {
            println!("{}", out.vars.join("\t"));
            for row in out.render(db.dict()) {
                println!("{row}");
            }
            eprintln!("{} rows ({} with NULLs)", out.len(), out.rows_with_nulls());
            if stats {
                eprintln!(
                    "init {:?}  prune {:?}  join {:?}  total {:?}\n\
                     candidates {} → {}  best-match required: {}",
                    out.stats.t_init,
                    out.stats.t_prune,
                    out.stats.t_join,
                    out.stats.t_total,
                    out.stats.initial_triples,
                    out.stats.triples_after_pruning,
                    out.stats.nb_required,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
