//! Result serialization for standard tooling: the W3C *SPARQL 1.1 Query
//! Results JSON Format* and the *SPARQL 1.1 Query Results CSV and TSV
//! Formats* (TSV variant), plus the human-oriented table rendering the
//! CLI defaults to.
//!
//! Every serializer is **streaming**: the `write_*` functions emit onto
//! any [`io::Write`] sink row by row, so a multi-million-row result set
//! is never materialized as one `String` — `lbr-server` points them
//! straight at the client socket. The [`json`] / [`tsv`] / [`table`]
//! `String` functions are thin wrappers over the same writers (via an
//! in-memory `Vec<u8>`), so both paths are byte-identical by
//! construction.
//!
//! Unbound cells (OPTIONAL NULLs) follow each spec: the variable is
//! *omitted* from a JSON binding object, and an *empty field* in TSV.
//! `ASK` results serialize as `{"head":{},"boolean":…}` in JSON; TSV and
//! the table print a single `true`/`false` line (the CSV/TSV spec only
//! covers SELECT, so this is a documented extension).

use lbr_core::QueryOutput;
use lbr_rdf::{Dictionary, Term};
use lbr_sparql::Query;
use std::io::{self, Write};

/// Output format selector for the CLI (`--format`) and the server's
/// `Accept` negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Tab-separated human-readable table with a header row and `NULL`
    /// for unbound cells (the historical CLI output).
    #[default]
    Table,
    /// W3C SPARQL 1.1 Query Results JSON.
    Json,
    /// W3C SPARQL 1.1 Query Results TSV.
    Tsv,
}

impl OutputFormat {
    /// Parses a `--format` value.
    pub fn from_name(s: &str) -> Option<OutputFormat> {
        match s {
            "table" => Some(OutputFormat::Table),
            "json" => Some(OutputFormat::Json),
            "tsv" => Some(OutputFormat::Tsv),
            _ => None,
        }
    }

    /// The MIME type this format serves under (what `lbr-server` puts in
    /// `Content-Type` and matches `Accept` headers against).
    pub fn media_type(self) -> &'static str {
        match self {
            OutputFormat::Table => "text/plain",
            OutputFormat::Json => "application/sparql-results+json",
            OutputFormat::Tsv => "text/tab-separated-values",
        }
    }

    /// Streams an output in this format onto a writer — byte-identical to
    /// what [`OutputFormat::render`] returns (JSON gets the same trailing
    /// newline).
    pub fn write_to<W: Write>(
        self,
        w: &mut W,
        query: &Query,
        output: &QueryOutput,
        dict: &Dictionary,
    ) -> io::Result<()> {
        match self {
            OutputFormat::Table => write_table(w, query, output, dict),
            OutputFormat::Json => {
                write_json(w, query, output, dict)?;
                w.write_all(b"\n")
            }
            OutputFormat::Tsv => write_tsv(w, query, output, dict),
        }
    }

    /// Renders an output in this format.
    pub fn render(self, query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf, query, output, dict)
            .expect("writing to a Vec cannot fail");
        utf8(buf)
    }
}

fn utf8(buf: Vec<u8>) -> String {
    // The serializers only emit UTF-8, so this is the by-construction
    // lossless path; `from_utf8_lossy` keeps the facade panic-free.
    match String::from_utf8(buf) {
        Ok(s) => s,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    }
}

/// The human-readable table: header row, then one tab-separated line per
/// solution with `NULL` for unbound cells. `ASK` prints `true`/`false`.
pub fn table(query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
    let mut buf = Vec::new();
    write_table(&mut buf, query, output, dict).expect("writing to a Vec cannot fail");
    utf8(buf)
}

/// Streaming writer behind [`table`].
pub fn write_table<W: Write>(
    w: &mut W,
    query: &Query,
    output: &QueryOutput,
    dict: &Dictionary,
) -> io::Result<()> {
    if query.is_ask() {
        return writeln!(w, "{}", output.boolean().unwrap_or(false));
    }
    writeln!(w, "{}", output.vars.join("\t"))?;
    for line in output.render(dict) {
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// W3C SPARQL 1.1 Query Results JSON:
/// `{"head":{"vars":[…]},"results":{"bindings":[…]}}` for SELECT,
/// `{"head":{},"boolean":…}` for ASK. Unbound variables are omitted from
/// their binding object, per the spec.
pub fn json(query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
    let mut buf = Vec::new();
    write_json(&mut buf, query, output, dict).expect("writing to a Vec cannot fail");
    utf8(buf)
}

/// Streaming writer behind [`json`] (no trailing newline, like [`json`]).
pub fn write_json<W: Write>(
    w: &mut W,
    query: &Query,
    output: &QueryOutput,
    dict: &Dictionary,
) -> io::Result<()> {
    if query.is_ask() {
        return write!(
            w,
            "{{\"head\":{{}},\"boolean\":{}}}",
            output.boolean().unwrap_or(false)
        );
    }
    w.write_all(b"{\"head\":{\"vars\":[")?;
    for (i, v) in output.vars.iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        write_json_string(w, v)?;
    }
    w.write_all(b"]},\"results\":{\"bindings\":[")?;
    for (i, row) in output.rows.iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        w.write_all(b"{")?;
        let mut first = true;
        for (var, cell) in output.vars.iter().zip(row.iter()) {
            let Some(binding) = cell else {
                continue; // unbound: omitted from the binding object
            };
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            write_json_string(w, var)?;
            w.write_all(b":")?;
            write_json_term(w, binding.decode(dict))?;
        }
        w.write_all(b"}")?;
    }
    w.write_all(b"]}}")
}

/// W3C SPARQL 1.1 Query Results TSV: a `?var` header line, then terms in
/// their N-Triples serialization, with unbound cells left empty.
pub fn tsv(query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
    let mut buf = Vec::new();
    write_tsv(&mut buf, query, output, dict).expect("writing to a Vec cannot fail");
    utf8(buf)
}

/// Streaming writer behind [`tsv`].
pub fn write_tsv<W: Write>(
    w: &mut W,
    query: &Query,
    output: &QueryOutput,
    dict: &Dictionary,
) -> io::Result<()> {
    if query.is_ask() {
        return writeln!(w, "{}", output.boolean().unwrap_or(false));
    }
    writeln!(w, "{}", tsv_header(&output.vars))?;
    for row in &output.rows {
        let cells: Vec<Option<&Term>> = row
            .iter()
            .map(|c| c.as_ref().map(|b| b.decode(dict)))
            .collect();
        writeln!(w, "{}", tsv_line(&cells))?;
    }
    Ok(())
}

/// The TSV header line (`?var1<TAB>?var2`), without the trailing newline.
pub fn tsv_header(vars: &[String]) -> String {
    let header: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
    header.join("\t")
}

/// One TSV data line for decoded cells (N-Triples term syntax, empty
/// field for unbound), without the trailing newline — the unit both
/// [`tsv`] and the CLI's streaming printer are built on.
pub fn tsv_line(cells: &[Option<&Term>]) -> String {
    let line: Vec<String> = cells
        .iter()
        .map(|c| c.map_or_else(String::new, |t| t.to_string()))
        .collect();
    line.join("\t")
}

fn write_json_term<W: Write>(w: &mut W, term: &Term) -> io::Result<()> {
    match term {
        Term::Iri(v) => {
            w.write_all(b"{\"type\":\"uri\",\"value\":")?;
            write_json_string(w, v)?;
        }
        Term::BlankNode(v) => {
            w.write_all(b"{\"type\":\"bnode\",\"value\":")?;
            write_json_string(w, v)?;
        }
        Term::Literal {
            lexical,
            datatype,
            lang,
        } => {
            w.write_all(b"{\"type\":\"literal\",\"value\":")?;
            write_json_string(w, lexical)?;
            if let Some(dt) = datatype {
                w.write_all(b",\"datatype\":")?;
                write_json_string(w, dt)?;
            } else if let Some(l) = lang {
                w.write_all(b",\"xml:lang\":")?;
                write_json_string(w, l)?;
            }
        }
    }
    w.write_all(b"}")
}

fn write_json_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    // Every byte that needs escaping is single-byte ASCII, so scanning
    // bytes and emitting the unescaped stretches as whole slices is
    // UTF-8-safe — and keeps this hot path (every term of every result
    // row `lbr-server` streams) at one `write_all` per run instead of a
    // formatted write per character.
    let bytes = s.as_bytes();
    w.write_all(b"\"")?;
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            b if b < 0x20 => b"",
            _ => continue,
        };
        w.write_all(&bytes[start..i])?;
        if escape.is_empty() {
            write!(w, "\\u{:04x}", b)?;
        } else {
            w.write_all(escape)?;
        }
        start = i + 1;
    }
    w.write_all(&bytes[start..])?;
    w.write_all(b"\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_query, Database, Term, Triple};

    fn db() -> Database {
        Database::from_triples(vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("a"), Term::iri("q"), Term::literal("x\ty")),
            Triple::new(
                Term::iri("c"),
                Term::iri("p"),
                Term::lang_literal("hi", "en"),
            ),
        ])
    }

    #[test]
    fn json_select_with_unbound_cells() {
        let db = db();
        let q = parse_query("SELECT * WHERE { ?s <p> ?o . OPTIONAL { ?s <q> ?x . } }").unwrap();
        let out = db.execute_query(&q).unwrap();
        let text = json(&q, &out, db.dict());
        assert!(
            text.starts_with("{\"head\":{\"vars\":[\"s\",\"o\",\"x\"]}"),
            "{text}"
        );
        assert!(
            text.contains("\"s\":{\"type\":\"uri\",\"value\":\"a\"}"),
            "{text}"
        );
        // The unmatched-OPTIONAL row for <c> omits "x" entirely.
        assert!(
            text.contains("\"o\":{\"type\":\"literal\",\"value\":\"hi\",\"xml:lang\":\"en\"}"),
            "{text}"
        );
        // Tab inside a literal is escaped.
        assert!(text.contains("x\\ty"), "{text}");
        let c_row = text
            .split("\"bindings\":[")
            .nth(1)
            .unwrap()
            .split("},{")
            .find(|b| b.contains("\"value\":\"c\""))
            .unwrap();
        assert!(!c_row.contains("\"x\":"), "unbound omitted: {c_row}");
    }

    #[test]
    fn json_ask() {
        let db = db();
        let q = parse_query("ASK { <a> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(json(&q, &out, db.dict()), "{\"head\":{},\"boolean\":true}");
        let q = parse_query("ASK { <nope> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(json(&q, &out, db.dict()), "{\"head\":{},\"boolean\":false}");
    }

    #[test]
    fn tsv_select_and_ask() {
        let db = db();
        let q = parse_query("SELECT ?s ?x WHERE { ?s <p> ?o . OPTIONAL { ?s <q> ?x . } }").unwrap();
        let out = db.execute_query(&q).unwrap();
        let text = tsv(&q, &out, db.dict());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("?s\t?x"));
        let body: Vec<&str> = lines.collect();
        assert!(body.contains(&"<a>\t\"x\\ty\""), "{body:?}");
        assert!(
            body.contains(&"<c>\t"),
            "unbound is an empty field: {body:?}"
        );
        let q = parse_query("ASK { <a> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(tsv(&q, &out, db.dict()), "true\n");
    }

    #[test]
    fn table_ask_and_format_names() {
        let db = db();
        let q = parse_query("ASK { <a> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(table(&q, &out, db.dict()), "true\n");
        assert_eq!(OutputFormat::from_name("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::from_name("tsv"), Some(OutputFormat::Tsv));
        assert_eq!(OutputFormat::from_name("table"), Some(OutputFormat::Table));
        assert_eq!(OutputFormat::from_name("xml"), None);
        assert_eq!(
            OutputFormat::Json.render(&q, &out, db.dict()),
            json(&q, &out, db.dict()) + "\n"
        );
    }

    /// The writer path (`write_*` onto a `Vec<u8>`) must be byte-identical
    /// to the `String` path — pinned against hand-written expected output,
    /// not just against each other, so a regression in the shared writer
    /// cannot hide.
    #[test]
    fn writer_path_equals_string_path() {
        let db = db();
        let q = parse_query(
            "SELECT ?s ?o ?x WHERE { ?s <p> ?o . OPTIONAL { ?s <q> ?x . } } ORDER BY ?s",
        )
        .unwrap();
        let out = db.execute_query(&q).unwrap();

        let mut buf = Vec::new();
        write_json(&mut buf, &q, &out, db.dict()).unwrap();
        let expected = concat!(
            "{\"head\":{\"vars\":[\"s\",\"o\",\"x\"]},\"results\":{\"bindings\":[",
            "{\"s\":{\"type\":\"uri\",\"value\":\"a\"},",
            "\"o\":{\"type\":\"uri\",\"value\":\"b\"},",
            "\"x\":{\"type\":\"literal\",\"value\":\"x\\ty\"}},",
            "{\"s\":{\"type\":\"uri\",\"value\":\"c\"},",
            "\"o\":{\"type\":\"literal\",\"value\":\"hi\",\"xml:lang\":\"en\"}}",
            "]}}"
        );
        assert_eq!(String::from_utf8(buf).unwrap(), expected);
        assert_eq!(json(&q, &out, db.dict()), expected);

        for format in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Tsv] {
            let mut buf = Vec::new();
            format.write_to(&mut buf, &q, &out, db.dict()).unwrap();
            assert_eq!(
                String::from_utf8(buf).unwrap(),
                format.render(&q, &out, db.dict()),
                "{format:?}"
            );
        }
    }

    #[test]
    fn media_types() {
        assert_eq!(
            OutputFormat::Json.media_type(),
            "application/sparql-results+json"
        );
        assert_eq!(OutputFormat::Tsv.media_type(), "text/tab-separated-values");
        assert_eq!(OutputFormat::Table.media_type(), "text/plain");
    }
}
