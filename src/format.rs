//! Result serialization for standard tooling: the W3C *SPARQL 1.1 Query
//! Results JSON Format* and the *SPARQL 1.1 Query Results CSV and TSV
//! Formats* (TSV variant), plus the human-oriented table rendering the
//! CLI defaults to.
//!
//! Unbound cells (OPTIONAL NULLs) follow each spec: the variable is
//! *omitted* from a JSON binding object, and an *empty field* in TSV.
//! `ASK` results serialize as `{"head":{},"boolean":…}` in JSON; TSV and
//! the table print a single `true`/`false` line (the CSV/TSV spec only
//! covers SELECT, so this is a documented extension).

use lbr_core::QueryOutput;
use lbr_rdf::{Dictionary, Term};
use lbr_sparql::Query;
use std::fmt::Write as _;

/// Output format selector for the CLI (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Tab-separated human-readable table with a header row and `NULL`
    /// for unbound cells (the historical CLI output).
    #[default]
    Table,
    /// W3C SPARQL 1.1 Query Results JSON.
    Json,
    /// W3C SPARQL 1.1 Query Results TSV.
    Tsv,
}

impl OutputFormat {
    /// Parses a `--format` value.
    pub fn from_name(s: &str) -> Option<OutputFormat> {
        match s {
            "table" => Some(OutputFormat::Table),
            "json" => Some(OutputFormat::Json),
            "tsv" => Some(OutputFormat::Tsv),
            _ => None,
        }
    }

    /// Renders an output in this format.
    pub fn render(self, query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
        match self {
            OutputFormat::Table => table(query, output, dict),
            OutputFormat::Json => {
                let mut s = json(query, output, dict);
                s.push('\n');
                s
            }
            OutputFormat::Tsv => tsv(query, output, dict),
        }
    }
}

/// The human-readable table: header row, then one tab-separated line per
/// solution with `NULL` for unbound cells. `ASK` prints `true`/`false`.
pub fn table(query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
    if query.is_ask() {
        return format!("{}\n", output.boolean().unwrap_or(false));
    }
    let mut s = output.vars.join("\t");
    s.push('\n');
    for line in output.render(dict) {
        s.push_str(&line);
        s.push('\n');
    }
    s
}

/// W3C SPARQL 1.1 Query Results JSON:
/// `{"head":{"vars":[…]},"results":{"bindings":[…]}}` for SELECT,
/// `{"head":{},"boolean":…}` for ASK. Unbound variables are omitted from
/// their binding object, per the spec.
pub fn json(query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
    let mut s = String::new();
    if query.is_ask() {
        let _ = write!(
            s,
            "{{\"head\":{{}},\"boolean\":{}}}",
            output.boolean().unwrap_or(false)
        );
        return s;
    }
    s.push_str("{\"head\":{\"vars\":[");
    for (i, v) in output.vars.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json_string(&mut s, v);
    }
    s.push_str("]},\"results\":{\"bindings\":[");
    for (i, row) in output.rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        let mut first = true;
        for (var, cell) in output.vars.iter().zip(row.iter()) {
            let Some(binding) = cell else {
                continue; // unbound: omitted from the binding object
            };
            if !first {
                s.push(',');
            }
            first = false;
            json_string(&mut s, var);
            s.push(':');
            json_term(&mut s, binding.decode(dict));
        }
        s.push('}');
    }
    s.push_str("]}}");
    s
}

/// W3C SPARQL 1.1 Query Results TSV: a `?var` header line, then terms in
/// their N-Triples serialization, with unbound cells left empty.
pub fn tsv(query: &Query, output: &QueryOutput, dict: &Dictionary) -> String {
    if query.is_ask() {
        return format!("{}\n", output.boolean().unwrap_or(false));
    }
    let mut s = String::new();
    s.push_str(&tsv_header(&output.vars));
    s.push('\n');
    for row in &output.rows {
        let cells: Vec<Option<&Term>> = row
            .iter()
            .map(|c| c.as_ref().map(|b| b.decode(dict)))
            .collect();
        s.push_str(&tsv_line(&cells));
        s.push('\n');
    }
    s
}

/// The TSV header line (`?var1<TAB>?var2`), without the trailing newline.
pub fn tsv_header(vars: &[String]) -> String {
    let header: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
    header.join("\t")
}

/// One TSV data line for decoded cells (N-Triples term syntax, empty
/// field for unbound), without the trailing newline — the unit both
/// [`tsv`] and the CLI's streaming printer are built on.
pub fn tsv_line(cells: &[Option<&Term>]) -> String {
    let line: Vec<String> = cells
        .iter()
        .map(|c| c.map_or_else(String::new, |t| t.to_string()))
        .collect();
    line.join("\t")
}

fn json_term(out: &mut String, term: &Term) {
    match term {
        Term::Iri(v) => {
            out.push_str("{\"type\":\"uri\",\"value\":");
            json_string(out, v);
            out.push('}');
        }
        Term::BlankNode(v) => {
            out.push_str("{\"type\":\"bnode\",\"value\":");
            json_string(out, v);
            out.push('}');
        }
        Term::Literal {
            lexical,
            datatype,
            lang,
        } => {
            out.push_str("{\"type\":\"literal\",\"value\":");
            json_string(out, lexical);
            if let Some(dt) = datatype {
                out.push_str(",\"datatype\":");
                json_string(out, dt);
            } else if let Some(l) = lang {
                out.push_str(",\"xml:lang\":");
                json_string(out, l);
            }
            out.push('}');
        }
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_query, Database, Term, Triple};

    fn db() -> Database {
        Database::from_triples(vec![
            Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")),
            Triple::new(Term::iri("a"), Term::iri("q"), Term::literal("x\ty")),
            Triple::new(
                Term::iri("c"),
                Term::iri("p"),
                Term::lang_literal("hi", "en"),
            ),
        ])
    }

    #[test]
    fn json_select_with_unbound_cells() {
        let db = db();
        let q = parse_query("SELECT * WHERE { ?s <p> ?o . OPTIONAL { ?s <q> ?x . } }").unwrap();
        let out = db.execute_query(&q).unwrap();
        let text = json(&q, &out, db.dict());
        assert!(
            text.starts_with("{\"head\":{\"vars\":[\"s\",\"o\",\"x\"]}"),
            "{text}"
        );
        assert!(
            text.contains("\"s\":{\"type\":\"uri\",\"value\":\"a\"}"),
            "{text}"
        );
        // The unmatched-OPTIONAL row for <c> omits "x" entirely.
        assert!(
            text.contains("\"o\":{\"type\":\"literal\",\"value\":\"hi\",\"xml:lang\":\"en\"}"),
            "{text}"
        );
        // Tab inside a literal is escaped.
        assert!(text.contains("x\\ty"), "{text}");
        let c_row = text
            .split("\"bindings\":[")
            .nth(1)
            .unwrap()
            .split("},{")
            .find(|b| b.contains("\"value\":\"c\""))
            .unwrap();
        assert!(!c_row.contains("\"x\":"), "unbound omitted: {c_row}");
    }

    #[test]
    fn json_ask() {
        let db = db();
        let q = parse_query("ASK { <a> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(json(&q, &out, db.dict()), "{\"head\":{},\"boolean\":true}");
        let q = parse_query("ASK { <nope> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(json(&q, &out, db.dict()), "{\"head\":{},\"boolean\":false}");
    }

    #[test]
    fn tsv_select_and_ask() {
        let db = db();
        let q = parse_query("SELECT ?s ?x WHERE { ?s <p> ?o . OPTIONAL { ?s <q> ?x . } }").unwrap();
        let out = db.execute_query(&q).unwrap();
        let text = tsv(&q, &out, db.dict());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("?s\t?x"));
        let body: Vec<&str> = lines.collect();
        assert!(body.contains(&"<a>\t\"x\\ty\""), "{body:?}");
        assert!(
            body.contains(&"<c>\t"),
            "unbound is an empty field: {body:?}"
        );
        let q = parse_query("ASK { <a> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(tsv(&q, &out, db.dict()), "true\n");
    }

    #[test]
    fn table_ask_and_format_names() {
        let db = db();
        let q = parse_query("ASK { <a> <p> ?o . }").unwrap();
        let out = db.execute_query(&q).unwrap();
        assert_eq!(table(&q, &out, db.dict()), "true\n");
        assert_eq!(OutputFormat::from_name("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::from_name("tsv"), Some(OutputFormat::Tsv));
        assert_eq!(OutputFormat::from_name("table"), Some(OutputFormat::Table));
        assert_eq!(OutputFormat::from_name("xml"), None);
        assert_eq!(
            OutputFormat::Json.render(&q, &out, db.dict()),
            json(&q, &out, db.dict()) + "\n"
        );
    }
}
