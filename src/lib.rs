//! # lbr — Left Bit Right
//!
//! A reproduction of Medha Atre's *"Left Bit Right: For SPARQL Join
//! Queries with OPTIONAL Patterns (Left-outer-joins)"* (SIGMOD-era, 2015):
//! a query processor for SPARQL BGP + OPTIONAL queries over compressed
//! BitMat indexes, with semi-join pruning that makes reordered left-outer
//! joins safe without nullification / best-match on well-designed acyclic
//! queries.
//!
//! ## Quickstart
//!
//! Build a [`Database`], prepare a query once, then stream [`Row`]s with
//! name-based accessors:
//!
//! ```
//! use lbr::{Database, EngineKind};
//!
//! let db = Database::builder()
//!     .ntriples(r#"
//!         <Jerry> <hasFriend> <Julia> .
//!         <Jerry> <hasFriend> <Larry> .
//!         <Julia> <actedIn> <Seinfeld> .
//!         <Seinfeld> <location> <NewYorkCity> .
//!     "#)
//!     .engine(EngineKind::Lbr)
//!     .build()
//!     .unwrap();
//!
//! let prepared = db.prepare(r#"
//!     SELECT * WHERE {
//!       <Jerry> <hasFriend> ?friend .
//!       OPTIONAL { ?friend <actedIn> ?sitcom .
//!                  ?sitcom <location> <NewYorkCity> . } }
//! "#).unwrap();
//!
//! // The parse → UNF rewrite → analysis → jvar-order pipeline ran once in
//! // `prepare`; each `solutions()` call only executes.
//! let mut friends: Vec<String> = prepared
//!     .solutions()
//!     .unwrap()
//!     .map(|row| row.term("friend").unwrap().to_string())
//!     .collect();
//! friends.sort();
//! assert_eq!(friends, vec!["<Julia>".to_string(), "<Larry>".to_string()]);
//! ```
//!
//! Queries are full SPARQL query specs: the `SELECT [DISTINCT|REDUCED]`
//! and `ASK` forms plus the `ORDER BY` / `LIMIT` / `OFFSET` solution
//! modifiers, parsed into [`Query`] (`form` + `pattern` + `modifiers`)
//! and applied by one shared seam (`lbr_core::modifiers`) for every
//! engine. `ASK` and plain `LIMIT` push a row quota into the LBR
//! multi-way join, which stops enumerating seeds once enough rows exist:
//!
//! ```
//! use lbr::Database;
//!
//! let db = Database::from_ntriples(r#"
//!     <Jerry> <hasFriend> <Julia> .
//!     <Jerry> <hasFriend> <Larry> .
//!     <Julia> <actedIn> <Seinfeld> .
//! "#).unwrap();
//!
//! // Existence short-circuits: the join stops at the first row.
//! assert!(db.ask("ASK { <Jerry> <hasFriend> ?f . }").unwrap());
//!
//! // DISTINCT dedupes on encoded dictionary IDs; ORDER BY sorts decoded
//! // terms under a documented total order; LIMIT/OFFSET slice.
//! let out = db.execute(
//!     "SELECT DISTINCT ?f WHERE { <Jerry> <hasFriend> ?f . }
//!      ORDER BY DESC(?f) LIMIT 1").unwrap();
//! assert_eq!(out.render(db.dict()), vec!["<Larry>".to_string()]);
//! ```
//!
//! Every engine of the paper's evaluation — LBR, the two pairwise
//! hash-join configurations, the outer-join reordering baseline and the
//! nested-loop reference oracle — implements the same [`Engine`] trait
//! and is selected with [`EngineKind`]:
//!
//! ```
//! use lbr::{Database, EngineKind};
//!
//! let db = Database::from_ntriples("<a> <p> <b> .").unwrap();
//! for kind in EngineKind::all() {
//!     let engine = db.engine_of(kind);
//!     let out = engine.execute(&lbr::parse_query("SELECT * WHERE { ?s <p> ?o . }").unwrap());
//!     assert_eq!(out.unwrap().len(), 1, "{kind}");
//! }
//! ```
//!
//! ## Crate map
//!
//! * [`rdf`] — terms, triples, dictionary encoding, N-Triples I/O;
//! * [`bitmat`] — compressed bit-matrices, `fold`/`unfold`, the on-disk
//!   index;
//! * [`sparql`] — parser, algebra (query forms + solution modifiers),
//!   GoSN / GoT / GoJ, well-designedness, rewrites;
//! * [`core`] — the LBR engine (init, `prune_triples`, multi-way join,
//!   nullification, best-match), the [`Engine`] trait, the shared
//!   form/modifier seam (`lbr_core::modifiers`) and the streaming
//!   [`Solutions`] API;
//! * [`format`] — W3C SPARQL 1.1 Results JSON / TSV serialization,
//!   streaming over any `io::Write` (what `lbr-cli --format` emits and
//!   `lbr-server` streams onto the socket);
//! * [`cache`] — the thread-safe LRU plan cache serving layers share
//!   ([`PlanCache`], keyed by canonicalized query text and pinned to the
//!   database epoch);
//! * [`storage`] — the updatable store: WAL + delta memtable layered
//!   over immutable BitMat segments, snapshot isolation via epoch'd
//!   `Arc` swaps, compaction (what [`DatabaseBuilder::wal_dir`] /
//!   [`DatabaseBuilder::updatable`] and [`Database::update`] sit on);
//! * [`baseline`] — comparator engines behind [`EngineKind`] (pairwise
//!   hash joins; outer-join reordering with repair operators; the
//!   reference oracle);
//! * [`datagen`] — LUBM/UniProt/DBPedia-like workload generators and the
//!   Appendix E benchmark queries.

#![forbid(unsafe_code)]

pub use lbr_baseline as baseline;
pub use lbr_bitmat as bitmat;
pub use lbr_core as core;
pub use lbr_datagen as datagen;
pub use lbr_obs as obs;
pub use lbr_rdf as rdf;
pub use lbr_sparql as sparql;
pub use lbr_store as storage;

pub mod cache;
pub mod format;

pub use cache::{canonicalize, CacheStats, CachedPlan, PlanCache, ResultCache, ResultCacheStats};
pub use format::OutputFormat;
pub use lbr_baseline::{EngineKind, EngineOptions};
pub use lbr_bitmat::{BitMatStore, Catalog, DiskCatalog};
pub use lbr_core::{Engine, LbrEngine, QueryOutput, QueryStats, Row, Solutions, StatsAggregate};
pub use lbr_rdf::{Dictionary, EncodedGraph, Graph, Term, Triple};
pub use lbr_sparql::{parse_query, Dedup, Modifiers, OrderKey, Query, QueryForm};
pub use lbr_sparql::{parse_update, Update, UpdateOp};
pub use lbr_store::{CommitInfo, SegmentSource, Snapshot, Store, StoreError, UpdateBatch};

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An RDF database: encoded graph + BitMat catalog + a default engine.
///
/// [`Database::builder`] is the front door; [`Database::from_triples`],
/// [`Database::from_ntriples`] and [`Database::from_encoded`] remain as
/// one-line shortcuts for the common in-memory/LBR configuration. The
/// underlying pieces stay public for users who need the catalog, the
/// baselines, or the disk index directly.
pub struct Database {
    backend: Backend,
    default_engine: EngineKind,
    threads: usize,
}

enum Backend {
    /// Fixed in-memory segments over a fixed graph.
    Memory {
        graph: EncodedGraph,
        store: BitMatStore,
    },
    /// Fixed on-disk segments; the graph provides the dictionary.
    Disk {
        graph: EncodedGraph,
        catalog: DiskCatalog,
    },
    /// The updatable store: segments + delta memtable (+ optional WAL),
    /// published as epoch-stamped snapshots.
    Mutable(Store),
}

/// Everything that can go wrong assembling a [`Database`].
#[derive(Debug)]
pub enum DatabaseError {
    /// The builder was given no triple source (the dictionary needs one
    /// even when querying an on-disk index).
    NoSource,
    /// Reading a data or index file failed.
    Io(PathBuf, std::io::Error),
    /// Parsing N-Triples failed.
    Rdf(rdf::RdfError),
    /// Opening the on-disk BitMat index failed.
    Index(bitmat::BitMatError),
    /// The on-disk index was built from different data than the given
    /// triples (dimension mismatch) — querying it would silently return
    /// wrong results.
    IndexMismatch {
        /// Dimensions of the opened index.
        index: bitmat::CubeDims,
        /// Dimensions implied by the triple source's dictionary.
        data: bitmat::CubeDims,
    },
    /// Opening or replaying the write-ahead log failed.
    Wal(StoreError),
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::NoSource => f.write_str(
                "no triple source: give the builder ntriples(), ntriples_file(), \
                 triples() or encoded()",
            ),
            DatabaseError::Io(path, e) => write!(f, "cannot read {}: {e}", path.display()),
            DatabaseError::Rdf(e) => write!(f, "{e}"),
            DatabaseError::Index(e) => write!(f, "{e}"),
            DatabaseError::IndexMismatch { index, data } => write!(
                f,
                "on-disk index does not match the data: index has {}/{}/{} S/P/O \
                 over {} triples, data has {}/{}/{} over {}",
                index.n_subjects,
                index.n_predicates,
                index.n_objects,
                index.n_triples,
                data.n_subjects,
                data.n_predicates,
                data.n_objects,
                data.n_triples,
            ),
            DatabaseError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

impl From<rdf::RdfError> for DatabaseError {
    fn from(e: rdf::RdfError) -> Self {
        DatabaseError::Rdf(e)
    }
}

impl From<bitmat::BitMatError> for DatabaseError {
    fn from(e: bitmat::BitMatError) -> Self {
        DatabaseError::Index(e)
    }
}

enum Source {
    Triples(Vec<Triple>),
    Ntriples(String),
    NtriplesFile(PathBuf),
    Encoded(Box<EncodedGraph>),
}

/// Configures and assembles a [`Database`].
///
/// Exactly one triple source is required; the last one set wins. With
/// [`DatabaseBuilder::disk_index`] the triples still provide the
/// dictionary while BitMat rows are read lazily from the index file.
#[must_use = "call .build() to assemble the Database"]
pub struct DatabaseBuilder {
    source: Option<Source>,
    index: Option<PathBuf>,
    wal_dir: Option<PathBuf>,
    updatable: bool,
    engine: EngineKind,
    threads: Option<usize>,
}

impl DatabaseBuilder {
    /// Uses raw triples as the source.
    pub fn triples(mut self, triples: Vec<Triple>) -> Self {
        self.source = Some(Source::Triples(triples));
        self
    }

    /// Uses an N-Triples document as the source.
    pub fn ntriples(mut self, text: impl Into<String>) -> Self {
        self.source = Some(Source::Ntriples(text.into()));
        self
    }

    /// Uses an N-Triples file as the source.
    pub fn ntriples_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = Some(Source::NtriplesFile(path.into()));
        self
    }

    /// Uses an already-encoded graph as the source.
    pub fn encoded(mut self, graph: EncodedGraph) -> Self {
        self.source = Some(Source::Encoded(Box::new(graph)));
        self
    }

    /// Reads BitMat rows lazily from an index written by
    /// [`bitmat::disk::save_store`] instead of building them in memory.
    pub fn disk_index(mut self, path: impl Into<PathBuf>) -> Self {
        self.index = Some(path.into());
        self
    }

    /// Makes the database updatable **and durable**: updates are logged
    /// to a write-ahead log in `dir` (created if missing) and fsynced
    /// before they are visible; on the next open with the same `dir`
    /// the log is replayed over the triple source, so the database
    /// reopens to exactly the committed updates — even after a crash
    /// mid-write (a torn tail is truncated to the last whole record).
    ///
    /// Implies [`DatabaseBuilder::updatable`]. Combines with
    /// [`DatabaseBuilder::disk_index`]: the delta memtable then layers
    /// over the mmap'd segments, and after the first compaction the
    /// checkpoint's own segment file takes over.
    pub fn wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Makes the database updatable without durability: updates go to
    /// the in-memory delta only and die with the process. Useful for
    /// tests and scratch stores; use [`DatabaseBuilder::wal_dir`] to
    /// persist updates.
    pub fn updatable(mut self) -> Self {
        self.updatable = true;
        self
    }

    /// Sets the default engine queries run on (default:
    /// [`EngineKind::Lbr`]).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Sets the worker-thread count engines created by this database use
    /// for intra-query parallelism (default: the machine's available
    /// parallelism; `1` = the exact serial path). Results are
    /// byte-identical at every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Assembles the database.
    pub fn build(self) -> Result<Database, DatabaseError> {
        let graph = match self.source {
            None => return Err(DatabaseError::NoSource),
            Some(Source::Encoded(graph)) => *graph,
            Some(Source::Triples(triples)) => Graph::from_triples(triples).encode(),
            Some(Source::Ntriples(text)) => {
                Graph::from_triples(rdf::parse_ntriples(&text)?).encode()
            }
            Some(Source::NtriplesFile(path)) => {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| DatabaseError::Io(path.clone(), e))?;
                Graph::from_triples(rdf::parse_ntriples(&text)?).encode()
            }
        };
        // An on-disk index must describe exactly the triple source's
        // dictionary — querying a mismatched index would silently return
        // wrong results.
        let catalog = match &self.index {
            Some(path) => {
                let catalog = DiskCatalog::open(Path::new(path))?;
                let index = catalog.dims();
                let dict = &graph.dict;
                let data = bitmat::CubeDims {
                    n_subjects: dict.n_subjects(),
                    n_predicates: dict.n_predicates(),
                    n_objects: dict.n_objects(),
                    n_shared: dict.n_shared(),
                    n_triples: graph.triples.len() as u64,
                };
                if index != data {
                    return Err(DatabaseError::IndexMismatch { index, data });
                }
                Some(catalog)
            }
            None => None,
        };
        let backend = if self.updatable || self.wal_dir.is_some() {
            // The updatable store layers its delta over either segment
            // medium; mmap'd segments from disk_index() skip the build.
            let segments = catalog.map(|c| SegmentSource::Disk(Arc::new(c)));
            let store = Store::open_with_segments(graph, segments, self.wal_dir.as_deref())
                .map_err(DatabaseError::Wal)?;
            Backend::Mutable(store)
        } else {
            match catalog {
                Some(catalog) => Backend::Disk { graph, catalog },
                None => {
                    let store = BitMatStore::build(&graph);
                    Backend::Memory { graph, store }
                }
            }
        };
        Ok(Database {
            backend,
            default_engine: self.engine,
            threads: self.threads.unwrap_or_else(core::api::default_threads),
        })
    }
}

impl Database {
    /// Starts a [`DatabaseBuilder`].
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder {
            source: None,
            index: None,
            wal_dir: None,
            updatable: false,
            engine: EngineKind::Lbr,
            threads: None,
        }
    }

    /// Shortcut: in-memory database over raw triples, LBR engine.
    pub fn from_triples(triples: Vec<Triple>) -> Database {
        Self::builder()
            .triples(triples)
            .build()
            .expect("in-memory build cannot fail")
    }

    /// Shortcut: in-memory database over an N-Triples document, LBR engine.
    pub fn from_ntriples(text: &str) -> Result<Database, rdf::RdfError> {
        match Self::builder().ntriples(text).build() {
            Ok(db) => Ok(db),
            Err(DatabaseError::Rdf(e)) => Err(e),
            Err(other) => unreachable!("ntriples build only fails on parse: {other}"),
        }
    }

    /// Shortcut: in-memory database over an encoded graph, LBR engine.
    pub fn from_encoded(graph: EncodedGraph) -> Database {
        Self::builder()
            .encoded(graph)
            .build()
            .expect("in-memory build cannot fail")
    }

    /// Pins one consistent view of the database for a whole request.
    ///
    /// On an updatable database this captures the current snapshot
    /// **once**: every engine built from the view, every epoch check and
    /// every dictionary decode then agree on the same data, no matter
    /// how many updates commit concurrently. (The borrow-shaped
    /// accessors [`Database::dict`] / [`Database::engine_of`] each pin
    /// the snapshot current at *their* call — correct in isolation, but
    /// two calls can straddle a commit; a `ReadView` is how the serving
    /// layers make validate-then-execute-then-decode atomic.)
    ///
    /// On a read-only database the view is free and trivially stable.
    pub fn read(&self) -> ReadView<'_> {
        ReadView {
            db: self,
            snap: self.mutable_store().map(Store::snapshot),
        }
    }

    fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            threads: self.threads,
            ..EngineOptions::default()
        }
    }

    /// The default engine, ready to run queries.
    pub fn engine(&self) -> Box<dyn Engine + '_> {
        self.engine_of(self.default_engine)
    }

    /// A specific engine over this database's catalog (using the
    /// database's configured thread count).
    pub fn engine_of(&self, kind: EngineKind) -> Box<dyn Engine + '_> {
        self.engine_with(
            kind,
            &EngineOptions {
                threads: self.threads,
                ..EngineOptions::default()
            },
        )
    }

    /// A specific engine with explicit [`EngineOptions`].
    ///
    /// On an updatable database the engine is bound to the snapshot
    /// current at this call: it sees that snapshot's triples for its
    /// whole lifetime, unaffected by concurrent updates (snapshot
    /// isolation — each epoch vended this way stays readable, and
    /// allocated, until the database is dropped; serving loops should
    /// prefer [`Database::read`], whose snapshots are freed when the
    /// view drops).
    pub fn engine_with(&self, kind: EngineKind, options: &EngineOptions) -> Box<dyn Engine + '_> {
        match &self.backend {
            Backend::Memory { graph, store } => kind.build_with(store, &graph.dict, options),
            Backend::Disk { graph, catalog } => kind.build_with(catalog, &graph.dict, options),
            Backend::Mutable(store) => {
                let snap = store.current_ref();
                kind.build_with(snap.catalog(), snap.dict(), options)
            }
        }
    }

    /// The default engine's kind.
    pub fn engine_kind(&self) -> EngineKind {
        self.default_engine
    }

    /// The worker-thread count engines created by this database use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parses and executes a query on the default engine.
    pub fn execute(&self, query_text: &str) -> Result<QueryOutput, core::LbrError> {
        let query = parse_query(query_text)?;
        self.execute_query(&query)
    }

    /// Executes a parsed query on the default engine.
    pub fn execute_query(&self, query: &Query) -> Result<QueryOutput, core::LbrError> {
        self.read().execute_query(query)
    }

    /// Parses and executes a query, streaming the solutions. Execution
    /// and decoding share one snapshot, so a concurrent update between
    /// the two cannot mismatch IDs and dictionary.
    pub fn solutions(&self, query_text: &str) -> Result<Solutions<'_>, core::LbrError> {
        let query = parse_query(query_text)?;
        match self.mutable_store() {
            Some(store) => {
                let snap = store.current_ref();
                let engine = self.default_engine.build_with(
                    snap.catalog(),
                    snap.dict(),
                    &self.engine_options(),
                );
                Ok(engine.execute(&query)?.into_solutions(snap.dict()))
            }
            None => Ok(self.execute_query(&query)?.into_solutions(self.dict())),
        }
    }

    /// Parses and executes an existence query, returning its boolean
    /// answer. The text may be a full `ASK { … }` query or a `SELECT`
    /// (whose answer is "did any solution survive the modifiers?" — the
    /// same semantics ASK applies). `ASK` short-circuits inside the LBR
    /// engine: the multi-way join stops at the first surviving row.
    pub fn ask(&self, query_text: &str) -> Result<bool, core::LbrError> {
        let mut query = parse_query(query_text)?;
        if !query.is_ask() && query.dedup() == Dedup::None {
            // Same truth value, but the ASK form unlocks the existence
            // fast path (DISTINCT + OFFSET must keep SELECT semantics:
            // emptiness then depends on the *deduplicated* count).
            query.form = QueryForm::Ask;
        }
        let out = self.execute_query(&query)?;
        Ok(out.boolean().unwrap_or(!out.is_empty()))
    }

    /// Executes a query through a shared [`PlanCache`]: repeated query
    /// texts (modulo whitespace) skip parsing + UNF rewrite + GoSN/GoJ
    /// planning entirely — the serving hot path of `lbr-server` and
    /// `lbr-cli --repeat`.
    pub fn execute_cached(
        &self,
        cache: &PlanCache,
        query_text: &str,
    ) -> Result<QueryOutput, core::LbrError> {
        // Pin the view first: if an update slips in between the cache
        // lookup and execution, the plan's epoch no longer matches the
        // view's and `execute_plan` re-plans instead of running baked
        // constant IDs against the wrong dictionary.
        let view = self.read();
        let cached = cache.get_or_prepare(self, query_text)?;
        view.execute_plan(&cached)
    }

    /// Executes a [`CachedPlan`] on a fresh engine of the kind it was
    /// planned for, on one pinned view. The plan is only used when its
    /// epoch matches the view's (see [`ReadView::execute_plan`]); a
    /// foreign or stale plan falls back to unprepared execution, so this
    /// is always correct — at worst it re-plans.
    pub fn execute_plan(&self, cached: &CachedPlan) -> Result<QueryOutput, core::LbrError> {
        self.read().execute_plan(cached)
    }

    /// Parses and prepares a query on the default engine: the planning
    /// pipeline (parse → UNF rewrite → analyze/classify → jvar order)
    /// runs once here; [`PreparedQuery::execute`] /
    /// [`PreparedQuery::solutions`] skip straight to execution.
    pub fn prepare(&self, query_text: &str) -> Result<PreparedQuery<'_>, core::LbrError> {
        self.prepare_query(parse_query(query_text)?)
    }

    /// Prepares an already-parsed query on the default engine.
    pub fn prepare_query(&self, query: Query) -> Result<PreparedQuery<'_>, core::LbrError> {
        let engine = self.engine();
        let plan = engine.plan_query(&query)?;
        Ok(PreparedQuery {
            kind: self.default_engine,
            engine,
            query,
            plan,
        })
    }

    /// Renders the default engine's plan for a query.
    pub fn explain(&self, query_text: &str) -> Result<String, core::LbrError> {
        let query = parse_query(query_text)?;
        self.engine().explain(&query)
    }

    /// EXPLAIN ANALYZE: executes the query on the default engine under a
    /// forced trace and renders the plan annotated with actual per-stage
    /// wall time and estimated-vs-actual cardinalities per TP and per
    /// jvar. Only the LBR engine supports this; other engines return a
    /// clear `Unsupported` error.
    pub fn explain_analyze(&self, query_text: &str) -> Result<String, core::LbrError> {
        let query = parse_query(query_text)?;
        self.engine().explain_analyze(&query)
    }

    /// The dictionary (for decoding results).
    ///
    /// On an updatable database: the current snapshot's dictionary. It
    /// stays valid for the database's lifetime even across updates that
    /// rebuild the dictionary (each epoch vended this way is retained
    /// until the database drops — prefer [`Database::read`] for
    /// request-scoped work), but IDs it hands out describe the snapshot
    /// it came from. To decode results, take the dictionary and the
    /// engine from one [`ReadView`] so they cannot straddle an update.
    pub fn dict(&self) -> &Dictionary {
        match &self.backend {
            Backend::Memory { graph, .. } | Backend::Disk { graph, .. } => &graph.dict,
            Backend::Mutable(store) => store.current_ref().dict(),
        }
    }

    /// The in-memory BitMat store (for baselines, benches, size reports).
    ///
    /// On an updatable database this is the current snapshot's immutable
    /// *segment* store — the compacted base, **without** the delta
    /// memtable. Use [`Database::engine_of`] (which layers the delta) to
    /// query; use this only for size/shape inspection.
    ///
    /// # Panics
    ///
    /// Panics when the database was built with
    /// [`DatabaseBuilder::disk_index`] (updatable or not) — the segments
    /// are mmap'd, there is no in-memory store; use
    /// [`Database::engine_of`] which works over either medium.
    pub fn store(&self) -> &BitMatStore {
        match &self.backend {
            Backend::Memory { store, .. } => store,
            Backend::Disk { .. } => panic!(
                "Database::store(): this database reads a disk index and has no \
                 in-memory BitMat store; go through Database::engine_of instead"
            ),
            Backend::Mutable(store) => match store.current_ref().segments().as_heap() {
                Some(segments) => segments,
                None => panic!(
                    "Database::store(): this updatable database serves mmap'd \
                     segments and has no in-memory BitMat store; go through \
                     Database::engine_of instead"
                ),
            },
        }
    }

    /// The encoded graph.
    ///
    /// On an updatable database: the current snapshot's *base* graph —
    /// delta-resident updates are not reflected here until a rebuild or
    /// compaction folds them in. [`Database::triples`] gives the merged
    /// view.
    pub fn graph(&self) -> &EncodedGraph {
        match &self.backend {
            Backend::Memory { graph, .. } | Backend::Disk { graph, .. } => graph,
            Backend::Mutable(store) => store.current_ref().graph(),
        }
    }

    /// Number of triples (on an updatable database: of the current
    /// snapshot, delta included).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Memory { graph, .. } | Backend::Disk { graph, .. } => graph.len(),
            Backend::Mutable(store) => store.snapshot().n_triples() as usize,
        }
    }

    /// True when the database has no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One consistent view of a [`Database`], created by [`Database::read`].
///
/// Holds the snapshot `Arc` current when it was created (on an
/// updatable database), so execution, plan-epoch validation and result
/// decoding all run against the same data — and the snapshot is freed
/// when the last view/reader drops it.
pub struct ReadView<'db> {
    db: &'db Database,
    snap: Option<Arc<Snapshot>>,
}

impl ReadView<'_> {
    /// The storage epoch this view is pinned to (`0` on a read-only
    /// database, which never changes epoch).
    pub fn epoch(&self) -> u64 {
        self.snap.as_ref().map_or(0, |s| s.epoch())
    }

    /// This view's dictionary — decodes exactly the IDs engines built
    /// from this view produce.
    pub fn dict(&self) -> &Dictionary {
        match &self.snap {
            Some(snap) => snap.dict(),
            None => self.db.dict(),
        }
    }

    /// The default engine over this view's data.
    pub fn engine(&self) -> Box<dyn Engine + '_> {
        self.engine_of(self.db.default_engine)
    }

    /// A specific engine over this view's data.
    pub fn engine_of(&self, kind: EngineKind) -> Box<dyn Engine + '_> {
        self.engine_with(kind, &self.db.engine_options())
    }

    /// A specific engine over this view's data with explicit
    /// [`EngineOptions`] — how the serving layer threads per-request
    /// deadlines into execution without giving up the pinned snapshot.
    pub fn engine_with(&self, kind: EngineKind, options: &EngineOptions) -> Box<dyn Engine + '_> {
        match &self.snap {
            Some(snap) => kind.build_with(snap.catalog(), snap.dict(), options),
            None => self.db.engine_with(kind, options),
        }
    }

    /// Executes a parsed query on this view's default engine.
    pub fn execute_query(&self, query: &Query) -> Result<QueryOutput, core::LbrError> {
        self.engine().execute(query)
    }

    /// Executes a [`CachedPlan`] against this view. The plan's baked
    /// constant IDs are only meaningful in the dictionary they were
    /// planned under, so the plan is used **only** when its epoch
    /// matches this view's; otherwise the query is re-planned here —
    /// always correct, at worst it re-plans.
    pub fn execute_plan(&self, cached: &CachedPlan) -> Result<QueryOutput, core::LbrError> {
        self.execute_plan_deadline(cached, None)
    }

    /// [`ReadView::execute_plan`] under a per-request execution deadline:
    /// once `deadline` passes, the LBR engine stops enumerating join
    /// seeds and execution returns [`core::LbrError::DeadlineExceeded`]
    /// (mapped to HTTP `504` by `lbr-server`). `None` never expires.
    pub fn execute_plan_deadline(
        &self,
        cached: &CachedPlan,
        deadline: Option<std::time::Instant>,
    ) -> Result<QueryOutput, core::LbrError> {
        let options = EngineOptions {
            deadline,
            ..self.db.engine_options()
        };
        let engine = self.engine_with(cached.engine_kind(), &options);
        if cached.epoch() != self.epoch() {
            return engine.execute(cached.query());
        }
        engine.execute_planned(cached.query(), cached.plan())
    }
}

/// What a [`Database::update`] did, summed over its operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Triples actually added (already-present triples don't count).
    pub inserted: u64,
    /// Triples actually removed (absent triples don't count).
    pub deleted: u64,
    /// The database epoch after the update (unchanged on a no-op).
    pub epoch: u64,
}

/// Everything that can go wrong in [`Database::update`].
#[derive(Debug)]
pub enum UpdateError {
    /// The update request did not parse.
    Parse(sparql::SparqlError),
    /// The database was built without [`DatabaseBuilder::wal_dir`] /
    /// [`DatabaseBuilder::updatable`] and cannot be modified.
    ReadOnly,
    /// Evaluating a `DELETE WHERE` pattern failed.
    Eval(core::LbrError),
    /// Committing to the store (WAL write/sync) failed.
    Store(StoreError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Parse(e) => write!(f, "{e}"),
            UpdateError::ReadOnly => f.write_str(
                "read-only database: build it with wal_dir(…) or updatable() to accept updates",
            ),
            UpdateError::Eval(e) => write!(f, "DELETE WHERE evaluation failed: {e}"),
            UpdateError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<sparql::SparqlError> for UpdateError {
    fn from(e: sparql::SparqlError) -> Self {
        UpdateError::Parse(e)
    }
}

impl From<StoreError> for UpdateError {
    fn from(e: StoreError) -> Self {
        UpdateError::Store(e)
    }
}

/// Updates (SPARQL 1.1 Update) — only on databases built with
/// [`DatabaseBuilder::wal_dir`] or [`DatabaseBuilder::updatable`].
impl Database {
    /// The updatable store, when this database has one.
    pub fn mutable_store(&self) -> Option<&Store> {
        match &self.backend {
            Backend::Mutable(store) => Some(store),
            _ => None,
        }
    }

    fn mutable(&self) -> Result<&Store, UpdateError> {
        self.mutable_store().ok_or(UpdateError::ReadOnly)
    }

    /// The storage epoch: bumped by every effective update, `0` forever
    /// on a read-only database. [`PlanCache`] keys plans to this.
    pub fn epoch(&self) -> u64 {
        self.mutable_store().map_or(0, Store::epoch)
    }

    /// Parses and executes a SPARQL 1.1 Update request (`INSERT DATA`,
    /// `DELETE DATA`, `DELETE WHERE`, `;`-sequences thereof). The whole
    /// request commits **atomically**: its operations are staged against
    /// the snapshot current at the start — later operations see earlier
    /// ones' staged effects — and the net change lands as one commit,
    /// one WAL record, one epoch bump (when a WAL is configured, one
    /// fsync). An error anywhere in the sequence leaves the database
    /// untouched. Queries running concurrently keep their snapshot and
    /// are unaffected.
    pub fn update(&self, update_text: &str) -> Result<UpdateOutcome, UpdateError> {
        let update = parse_update(update_text)?;
        self.update_parsed(&update)
    }

    /// Executes an already-parsed update request (atomically; see
    /// [`Database::update`]).
    pub fn update_parsed(&self, update: &Update) -> Result<UpdateOutcome, UpdateError> {
        let store = self.mutable()?;
        let snap = store.snapshot();
        // Net presence overrides relative to `snap`; `inserted`/`deleted`
        // count the *effective* ops in request order, matching what a
        // sequence of separate commits would have reported.
        let mut staged: HashMap<Triple, bool> = HashMap::new();
        let (mut inserted, mut deleted) = (0u64, 0u64);
        let stage = |staged: &mut HashMap<Triple, bool>, t: &Triple, to: bool, n: &mut u64| {
            let present = staged.get(t).copied().unwrap_or_else(|| snap.contains(t));
            if present != to {
                *n += 1;
                staged.insert(t.clone(), to);
            }
        };
        for op in &update.ops {
            match op {
                UpdateOp::InsertData(ts) => {
                    for t in ts {
                        stage(&mut staged, t, true, &mut inserted);
                    }
                }
                UpdateOp::DeleteData(ts) => {
                    for t in ts {
                        stage(&mut staged, t, false, &mut deleted);
                    }
                }
                UpdateOp::DeleteWhere(tps) => {
                    for t in self.resolve_delete_where(&snap, &staged, tps)? {
                        stage(&mut staged, &t, false, &mut deleted);
                    }
                }
            }
        }
        // Only net changes commit: a triple inserted then deleted in the
        // same request (or vice versa) cancels out entirely.
        let mut batch = UpdateBatch::default();
        for (t, present) in staged {
            match (present, snap.contains(&t)) {
                (true, false) => batch.inserts.push(t),
                (false, true) => batch.deletes.push(t),
                _ => {}
            }
        }
        batch.inserts.sort_unstable();
        batch.deletes.sort_unstable();
        if batch.inserts.is_empty() && batch.deletes.is_empty() {
            return Ok(UpdateOutcome {
                inserted,
                deleted,
                epoch: store.epoch(),
            });
        }
        let info = store.apply(batch)?;
        Ok(UpdateOutcome {
            inserted,
            deleted,
            epoch: info.epoch,
        })
    }

    /// Adds triples (the programmatic `INSERT DATA`).
    pub fn insert_triples(&self, triples: Vec<Triple>) -> Result<UpdateOutcome, UpdateError> {
        let info = self.mutable()?.apply(UpdateBatch::insert(triples))?;
        Ok(UpdateOutcome {
            inserted: info.inserted,
            deleted: info.deleted,
            epoch: info.epoch,
        })
    }

    /// Removes triples (the programmatic `DELETE DATA`).
    pub fn delete_triples(&self, triples: Vec<Triple>) -> Result<UpdateOutcome, UpdateError> {
        let info = self.mutable()?.apply(UpdateBatch::delete(triples))?;
        Ok(UpdateOutcome {
            inserted: info.inserted,
            deleted: info.deleted,
            epoch: info.epoch,
        })
    }

    /// Folds the delta memtable into freshly built segments, publishing
    /// the result as a new epoch (queries in flight keep their
    /// snapshot). Returns the epoch after compaction. The store also
    /// compacts automatically once the delta passes its threshold.
    pub fn compact(&self) -> Result<u64, UpdateError> {
        Ok(self.mutable()?.compact()?.epoch)
    }

    /// Materializes the current triples, sorted — on an updatable
    /// database the merged (segments + delta) view of the current
    /// snapshot. A test/inspection substrate, not a hot path.
    pub fn triples(&self) -> Vec<Triple> {
        match &self.backend {
            Backend::Memory { graph, .. } | Backend::Disk { graph, .. } => {
                let mut out: Vec<Triple> = graph
                    .triples
                    .iter()
                    .map(|e| graph.dict.decode(e).expect("graph IDs decode"))
                    .collect();
                out.sort_unstable();
                out
            }
            Backend::Mutable(store) => store.snapshot().triples(),
        }
    }

    /// Evaluates a `DELETE WHERE` pattern to the concrete triples it
    /// matches, on the request's staging snapshot with the request's
    /// earlier staged effects composed on top (one pinned view, so
    /// result IDs and the decoding dictionary cannot drift apart).
    fn resolve_delete_where(
        &self,
        snap: &Snapshot,
        staged: &HashMap<Triple, bool>,
        tps: &[sparql::TriplePattern],
    ) -> Result<Vec<Triple>, UpdateError> {
        use sparql::{GraphPattern, Selection, TermPattern};

        if tps.is_empty() {
            return Ok(Vec::new());
        }
        // Ground pattern: the matches are the pattern itself (staging
        // drops the ones that aren't present).
        if let Some(ground) = tps
            .iter()
            .map(|tp| match (&tp.s, &tp.p, &tp.o) {
                (TermPattern::Const(s), TermPattern::Const(p), TermPattern::Const(o)) => {
                    Some(Triple::new(s.clone(), p.clone(), o.clone()))
                }
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
        {
            return Ok(ground);
        }

        let query = Query {
            form: QueryForm::Select {
                selection: Selection::All,
                dedup: Dedup::None,
            },
            pattern: GraphPattern::Bgp(tps.to_vec()),
            modifiers: Modifiers::default(),
        };
        let options = self.engine_options();
        let staged_vec: Vec<(Triple, bool)> = staged.iter().map(|(t, p)| (t.clone(), *p)).collect();
        // Fast path: compose the staged ops into a delta overlay sharing
        // the snapshot's segments + dictionary. Falls back to indexing a
        // scratch copy of the staged view when a staged insert carries a
        // term the snapshot's dictionary cannot encode.
        let (vars, rows) = match snap.overlay_with(&staged_vec) {
            Some(catalog) => {
                let engine = self
                    .default_engine
                    .build_with(&catalog, snap.dict(), &options);
                let out = engine.execute(&query).map_err(UpdateError::Eval)?;
                let rows = out.decode(snap.dict());
                (out.vars, rows)
            }
            None => {
                let mut view: HashSet<Triple> = snap.triples().into_iter().collect();
                for (t, present) in staged {
                    if *present {
                        view.insert(t.clone());
                    } else {
                        view.remove(t);
                    }
                }
                let graph = Graph::from_triples(view.into_iter().collect()).encode();
                let segments = BitMatStore::build(&graph);
                let engine = self
                    .default_engine
                    .build_with(&segments, &graph.dict, &options);
                let out = engine.execute(&query).map_err(UpdateError::Eval)?;
                let rows = out.decode(&graph.dict);
                (out.vars, rows)
            }
        };
        let var_slot: Vec<Option<usize>> = {
            let slot_of = |v: &str| vars.iter().position(|name| name == v);
            tps.iter()
                .flat_map(|tp| [&tp.s, &tp.p, &tp.o])
                .map(|t| match t {
                    TermPattern::Var(v) => slot_of(v),
                    TermPattern::Const(_) => None,
                })
                .collect()
        };
        let mut matches = Vec::new();
        'rows: for row in &rows {
            for (i, tp) in tps.iter().enumerate() {
                let term = |j: usize, c: &TermPattern| -> Option<Term> {
                    match c {
                        TermPattern::Const(t) => Some(t.clone()),
                        TermPattern::Var(_) => row[var_slot[3 * i + j]?].clone(),
                    }
                };
                // An unbound position can't happen in a pure BGP; skip
                // the pattern defensively rather than delete wrongly.
                match (term(0, &tp.s), term(1, &tp.p), term(2, &tp.o)) {
                    (Some(s), Some(p), Some(o)) => matches.push(Triple::new(s, p, o)),
                    _ => continue 'rows,
                }
            }
        }
        matches.sort_unstable();
        matches.dedup();
        Ok(matches)
    }
}

/// A query whose planning pipeline already ran.
///
/// Created by [`Database::prepare`]; holds the parsed query, the engine
/// it was prepared on, and the engine's cached plan (for the LBR engine:
/// the UNF branches with their GoSN/GoJ analyses, variable tables,
/// selectivity estimates and jvar orders). Re-executing costs only the
/// data phases — the million-execution serving path.
pub struct PreparedQuery<'db> {
    kind: EngineKind,
    engine: Box<dyn Engine + 'db>,
    query: Query,
    plan: Box<dyn Any + Send + Sync>,
}

// The serving layer (`lbr-server`, the shared plan cache, the concurrency
// tests) shares one `Database` — and prepared queries on it — across a
// worker pool. Keep that auditable at compile time: if an interior type
// ever loses `Send + Sync` (an `Rc`, a non-sync cache), this fails to
// build rather than failing at the `Arc<Database>` use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<DatabaseBuilder>();
    assert_send_sync::<PreparedQuery<'static>>();
    assert_send_sync::<ReadView<'static>>();
    assert_send_sync::<cache::PlanCache>();
    assert_send_sync::<core::StatsAggregate>();
    assert_send_sync::<obs::Tracing>();
    assert_send_sync::<obs::FinishedTrace>();
    // `Engine: Send + Sync` is a supertrait bound, so every engine the
    // `EngineKind` seam can build satisfies it; assert the trait-object
    // types the facade actually hands out.
    assert_send_sync::<dyn Engine>();
    assert_send_sync::<Box<dyn Engine>>();
};

impl PreparedQuery<'_> {
    /// Executes the prepared query to a materialized [`QueryOutput`].
    pub fn execute(&self) -> Result<QueryOutput, core::LbrError> {
        self.engine.execute_planned(&self.query, self.plan.as_ref())
    }

    /// Executes the prepared query, streaming the solutions.
    pub fn solutions(&self) -> Result<Solutions<'_>, core::LbrError> {
        Ok(self.execute()?.into_solutions(self.engine.dict()))
    }

    /// EXPLAIN ANALYZE for the prepared query: re-executes it under a
    /// forced trace and renders actual timings and cardinalities.
    pub fn explain_analyze(&self) -> Result<String, core::LbrError> {
        self.engine.explain_analyze(&self.query)
    }

    /// Renders the plan this query will run with.
    pub fn explain(&self) -> Result<String, core::LbrError> {
        self.engine.explain(&self.query)
    }

    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The kind of engine the query was prepared on.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }
}
