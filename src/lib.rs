//! # lbr — Left Bit Right
//!
//! A reproduction of Medha Atre's *"Left Bit Right: For SPARQL Join
//! Queries with OPTIONAL Patterns (Left-outer-joins)"* (SIGMOD-era, 2015):
//! a query processor for SPARQL BGP + OPTIONAL queries over compressed
//! BitMat indexes, with semi-join pruning that makes reordered left-outer
//! joins safe without nullification / best-match on well-designed acyclic
//! queries.
//!
//! ## Quickstart
//!
//! ```
//! use lbr::Database;
//!
//! let db = Database::from_ntriples(r#"
//!     <Jerry> <hasFriend> <Julia> .
//!     <Jerry> <hasFriend> <Larry> .
//!     <Julia> <actedIn> <Seinfeld> .
//!     <Seinfeld> <location> <NewYorkCity> .
//! "#).unwrap();
//!
//! let out = db.execute(r#"
//!     SELECT * WHERE {
//!       <Jerry> <hasFriend> ?friend .
//!       OPTIONAL { ?friend <actedIn> ?sitcom .
//!                  ?sitcom <location> <NewYorkCity> . } }
//! "#).unwrap();
//!
//! let mut rows = out.render(db.dict());
//! rows.sort();
//! assert_eq!(rows, vec![
//!     "<Julia>\t<Seinfeld>".to_string(),
//!     "<Larry>\tNULL".to_string(),
//! ]);
//! ```
//!
//! ## Crate map
//!
//! * [`rdf`] — terms, triples, dictionary encoding, N-Triples I/O;
//! * [`bitmat`] — compressed bit-matrices, `fold`/`unfold`, the on-disk
//!   index;
//! * [`sparql`] — parser, algebra, GoSN / GoT / GoJ, well-designedness,
//!   rewrites;
//! * [`core`] — the LBR engine (init, `prune_triples`, multi-way join,
//!   nullification, best-match);
//! * [`baseline`] — comparator engines (pairwise hash joins; outer-join
//!   reordering with repair operators; the reference oracle);
//! * [`datagen`] — LUBM/UniProt/DBPedia-like workload generators and the
//!   Appendix E benchmark queries.

pub use lbr_baseline as baseline;
pub use lbr_bitmat as bitmat;
pub use lbr_core as core;
pub use lbr_datagen as datagen;
pub use lbr_rdf as rdf;
pub use lbr_sparql as sparql;

pub use lbr_bitmat::{BitMatStore, Catalog, DiskCatalog};
pub use lbr_core::{LbrEngine, QueryOutput, QueryStats};
pub use lbr_rdf::{Dictionary, EncodedGraph, Graph, Term, Triple};
pub use lbr_sparql::{parse_query, Query};

/// An in-memory RDF database: encoded graph + BitMat store + LBR engine.
///
/// This is the five-line entry point; the underlying pieces are all public
/// for users who need the catalog, the baselines, or the disk index.
pub struct Database {
    graph: EncodedGraph,
    store: BitMatStore,
}

impl Database {
    /// Builds a database from raw triples.
    pub fn from_triples(triples: Vec<Triple>) -> Database {
        let graph = Graph::from_triples(triples).encode();
        let store = BitMatStore::build(&graph);
        Database { graph, store }
    }

    /// Builds a database from an N-Triples document.
    pub fn from_ntriples(text: &str) -> Result<Database, rdf::RdfError> {
        Ok(Self::from_triples(rdf::parse_ntriples(text)?))
    }

    /// Builds a database from an already-encoded graph.
    pub fn from_encoded(graph: EncodedGraph) -> Database {
        let store = BitMatStore::build(&graph);
        Database { graph, store }
    }

    /// Parses and executes a query with the LBR engine.
    pub fn execute(&self, query_text: &str) -> Result<QueryOutput, core::LbrError> {
        let query = parse_query(query_text)?;
        self.execute_query(&query)
    }

    /// Executes a parsed query with the LBR engine.
    pub fn execute_query(&self, query: &Query) -> Result<QueryOutput, core::LbrError> {
        LbrEngine::new(&self.store, &self.graph.dict).execute(query)
    }

    /// The dictionary (for decoding results).
    pub fn dict(&self) -> &Dictionary {
        &self.graph.dict
    }

    /// The BitMat store (for baselines, benches, size reports).
    pub fn store(&self) -> &BitMatStore {
        &self.store
    }

    /// The encoded graph.
    pub fn graph(&self) -> &EncodedGraph {
        &self.graph
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when the database has no triples.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}
