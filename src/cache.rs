//! A thread-safe LRU **plan cache**: the serving layer's front door to
//! the planning pipeline.
//!
//! Planning a query (parse → UNF rewrite → GoSN/GoJ analysis →
//! classification → selectivity estimates → jvar order) costs far more
//! than re-executing a prepared plan, and a serving workload repeats a
//! small set of query shapes millions of times. [`PlanCache`] memoizes
//! [`Engine::plan_query`](lbr_core::Engine::plan_query) results keyed by
//! the *canonicalized* query text (whitespace collapsed outside string
//! literals), so `curl`-style reformatting still hits.
//!
//! The cache stores [`CachedPlan`]s — parsed [`Query`] + the engine's
//! opaque `Send + Sync` plan — rather than borrowing engines, so one
//! cache can outlive any particular engine instance and be shared freely
//! across an `Arc<Database>` worker pool. A hit skips parsing and
//! planning entirely; execution builds a fresh (thin, borrow-only)
//! engine per call via [`Database::execute_plan`].
//!
//! Every entry is pinned to the **database epoch** it was planned at
//! ([`Database::epoch`]). Plans bake in snapshot-specific facts —
//! encoded constant IDs, selectivity estimates — that an update can
//! invalidate (a dictionary rebuild reassigns IDs), so serving a
//! stale-epoch plan could silently return wrong rows. A lookup that
//! finds an entry from an older epoch treats it as a miss, drops the
//! entry and counts an `epoch_eviction`. Read-only databases sit at
//! epoch 0 forever and never pay this check a second glance.
//!
//! Hit / miss / eviction counters are monotone atomics, surfaced by
//! [`PlanCache::stats`] in `lbr-server`'s `/stats` endpoint and in
//! `lbr-cli --repeat` output.

use crate::{Database, EngineKind, Query};
use lbr_core::LbrError;
use std::any::Any;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached planning result: the parsed query, the engine kind it was
/// planned on, and that engine's opaque plan.
///
/// Execution re-binds the plan to a fresh engine of the same kind
/// ([`Database::execute_plan`]); engines fall back to unprepared
/// execution when handed a foreign plan, so a stale entry can never
/// produce wrong results — only wasted planning.
pub struct CachedPlan {
    query: Query,
    kind: EngineKind,
    epoch: u64,
    plan: Box<dyn Any + Send + Sync>,
}

impl CachedPlan {
    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The engine kind the plan was produced by.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// The database epoch the plan was produced at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine's opaque plan (what
    /// [`Engine::execute_planned`](lbr_core::Engine::execute_planned)
    /// downcasts).
    pub fn plan(&self) -> &(dyn Any + Send + Sync) {
        self.plan.as_ref()
    }
}

/// A monotone snapshot of the cache counters plus current occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the planning pipeline.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries dropped because an update moved the database past the
    /// epoch they were planned at (each also counts as a miss).
    pub epoch_evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
}

struct Entry {
    cached: Arc<CachedPlan>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// Logical clock: bumped per touch, orders entries for LRU eviction.
    clock: u64,
}

/// A fixed-capacity, thread-safe, least-recently-used plan cache.
///
/// Interior locking: one `Mutex` guards the map (planning itself runs
/// *outside* the lock so a slow plan never serializes unrelated hits),
/// and the counters are relaxed atomics. Eviction scans for the LRU
/// entry, which is O(capacity) — capacities are small (tens to
/// thousands), misses are rare by design, and the scan only runs on
/// insert-over-capacity.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    epoch_evictions: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            epoch_evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the cached plan for `text`, planning (and caching) it on
    /// `db`'s default engine on a miss.
    ///
    /// Two threads missing on the same key concurrently both plan, but
    /// only the first insert sticks — the loser adopts the winner's entry
    /// so the cache never holds duplicates.
    pub fn get_or_prepare(&self, db: &Database, text: &str) -> Result<Arc<CachedPlan>, LbrError> {
        let key = canonicalize(text);
        // Pin one view for the whole call: the plan is built against this
        // view's snapshot and stamped with the *same* snapshot's epoch, so
        // an update landing mid-plan cannot stamp the entry fresher than
        // the dictionary its constant IDs were encoded in.
        let view = db.read();
        let epoch = view.epoch();
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.entries.get_mut(&key) {
                if entry.cached.epoch == epoch {
                    entry.last_used = clock;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&entry.cached));
                }
                // Planned at an older epoch: the plan may bake in stale
                // dictionary IDs. Drop it and re-plan.
                inner.entries.remove(&key);
                self.epoch_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Miss: run the planning pipeline outside the lock, on the view
        // pinned above. Parse and plan each get a trace span so EXPLAIN
        // ANALYZE / `/debug/traces` show where a cold query's time went
        // (a hit skips both, which is the point of the cache).
        let t_parse = std::time::Instant::now();
        let query = crate::parse_query(text)?;
        lbr_obs::span_since("parse", t_parse, &[("bytes", text.len() as u64)]);
        let engine = view.engine();
        let t_plan = std::time::Instant::now();
        let plan = engine.plan_query(&query)?;
        lbr_obs::span_since("plan", t_plan, &[]);
        let cached = Arc::new(CachedPlan {
            query,
            kind: db.engine_kind(),
            epoch,
            plan,
        });
        self.misses.fetch_add(1, Ordering::Relaxed);

        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.entry(key) {
            MapEntry::Occupied(mut occupied) if occupied.get().cached.epoch >= epoch => {
                // Raced with another planner: keep the incumbent (it is
                // at least as fresh as ours).
                occupied.get_mut().last_used = clock;
                return Ok(Arc::clone(&occupied.get().cached));
            }
            MapEntry::Occupied(mut occupied) => {
                // The incumbent is from an older epoch: replace it.
                self.epoch_evictions.fetch_add(1, Ordering::Relaxed);
                *occupied.get_mut() = Entry {
                    cached: Arc::clone(&cached),
                    last_used: clock,
                };
            }
            MapEntry::Vacant(vacant) => {
                vacant.insert(Entry {
                    cached: Arc::clone(&cached),
                    last_used: clock,
                });
            }
        }
        while inner.entries.len() > self.capacity {
            let Some(lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break; // len > capacity ≥ 0 implies non-empty, but stay panic-free
            };
            inner.entries.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(cached)
    }

    /// Snapshots the counters (hits/misses/evictions are monotone).
    pub fn stats(&self) -> CacheStats {
        let len = self
            .inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            epoch_evictions: self.epoch_evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters keep their values).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .entries
            .clear();
    }
}

/// A monotone snapshot of the [`ResultCache`] counters plus occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache (serialized bytes served without
    /// parse, plan or execution).
    pub hits: u64,
    /// Lookups that had to execute the query.
    pub misses: u64,
    /// Entries evicted to stay within the entry or byte budget.
    pub evictions: u64,
    /// Entries dropped because an update moved the store past the epoch
    /// they were computed at (each also counts as a miss).
    pub epoch_evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
    /// Serialized bytes currently cached.
    pub bytes: u64,
    /// Maximum serialized bytes.
    pub max_bytes: u64,
}

struct ResultEntry {
    body: Arc<Vec<u8>>,
    epoch: u64,
    last_used: u64,
}

struct ResultInner {
    /// Keyed by `(canonicalized query text, media type)` — the same text
    /// normalization as the plan cache, so `curl`-reformatted repeats of
    /// one query share an entry per `Accept` type.
    entries: HashMap<(String, String), ResultEntry>,
    /// Sum of `body.len()` over `entries` (the byte budget's meter).
    bytes: usize,
    clock: u64,
}

/// A fixed-capacity LRU **result cache** layered over [`PlanCache`]:
/// `(canonicalized query text, response media type, store epoch)` →
/// serialized response bytes.
///
/// Where a plan-cache hit skips parsing and planning, a result-cache hit
/// skips *everything* — the bytes on the wire are the bytes cached. That
/// is only sound because every entry is pinned to the store epoch its
/// response was computed at: a lookup presents the epoch of the request's
/// pinned [`crate::ReadView`], and an entry from any other epoch is
/// dropped (an `epoch_eviction`) instead of served. Updates therefore
/// invalidate structurally — no flush call, no TTL; the first request
/// after a commit misses, recomputes at the new epoch, and repopulates.
///
/// Bounded twice: at most `capacity` entries and at most `max_bytes` of
/// cached body bytes (a response larger than the whole byte budget is
/// simply not cached). Eviction is LRU under both limits.
pub struct ResultCache {
    capacity: usize,
    max_bytes: usize,
    inner: Mutex<ResultInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    epoch_evictions: AtomicU64,
}

impl ResultCache {
    /// The map lock, recovering from poisoning instead of panicking: the
    /// serving path must stay panic-free, and the worst a panic mid-edit
    /// leaves behind is a byte meter that drifts from the map (kept safe
    /// by saturating arithmetic and rebuilt by eviction churn) — never a
    /// wrong response body, since entries are immutable once inserted.
    fn locked(&self) -> std::sync::MutexGuard<'_, ResultInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Creates a cache of at most `capacity` entries (minimum 1) and
    /// `max_bytes` of cached response bytes.
    pub fn new(capacity: usize, max_bytes: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            max_bytes,
            inner: Mutex::new(ResultInner {
                entries: HashMap::new(),
                bytes: 0,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            epoch_evictions: AtomicU64::new(0),
        }
    }

    /// The serialized response for `(key, media)` computed at exactly
    /// `epoch`, or `None` (counted as a miss). `key` must already be
    /// [`canonicalize`]d — the caller canonicalizes once and reuses the
    /// key for the [`ResultCache::insert`] after a miss. An entry found
    /// at a different epoch is dropped and counted as an
    /// `epoch_eviction`.
    pub fn get(&self, key: &str, media: &str, epoch: u64) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.locked();
        inner.clock += 1;
        let clock = inner.clock;
        // Borrow-checker note: the map key is owned, so lookups build a
        // transient pair; entries are few and hits dominate, so the two
        // small clones are noise next to the execution they avoid.
        let map_key = (key.to_string(), media.to_string());
        if let Some(entry) = inner.entries.get_mut(&map_key) {
            if entry.epoch == epoch {
                entry.last_used = clock;
                let body = Arc::clone(&entry.body);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(body);
            }
            let stale = inner.entries.remove(&map_key).map_or(0, |e| e.body.len());
            inner.bytes = inner.bytes.saturating_sub(stale);
            self.epoch_evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Caches the serialized response for `(key, media)` computed at
    /// `epoch`, evicting LRU entries to respect both budgets. A body
    /// larger than the whole byte budget is not cached.
    pub fn insert(&self, key: String, media: &str, epoch: u64, body: Arc<Vec<u8>>) {
        if body.len() > self.max_bytes {
            return;
        }
        let mut inner = self.locked();
        inner.clock += 1;
        let clock = inner.clock;
        let map_key = (key, media.to_string());
        if let Some(old) = inner.entries.remove(&map_key) {
            inner.bytes = inner.bytes.saturating_sub(old.body.len());
            if old.epoch > epoch {
                // Raced with a fresher computation: keep the incumbent.
                inner.bytes += old.body.len();
                inner.entries.insert(map_key, old);
                return;
            }
        }
        inner.bytes += body.len();
        inner.entries.insert(
            map_key,
            ResultEntry {
                body,
                epoch,
                last_used: clock,
            },
        );
        while inner.entries.len() > self.capacity || inner.bytes > self.max_bytes {
            let Some(lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break; // over-budget implies non-empty, but stay panic-free
            };
            let freed = inner.entries.remove(&lru).map_or(0, |e| e.body.len());
            inner.bytes = inner.bytes.saturating_sub(freed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshots the counters (hits/misses/evictions are monotone).
    pub fn stats(&self) -> ResultCacheStats {
        let (len, bytes) = {
            let inner = self.locked();
            (inner.entries.len(), inner.bytes)
        };
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            epoch_evictions: self.epoch_evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
            bytes: bytes as u64,
            max_bytes: self.max_bytes as u64,
        }
    }

    /// Drops every entry (counters keep their values).
    pub fn clear(&self) {
        let mut inner = self.locked();
        inner.entries.clear();
        inner.bytes = 0;
    }
}

/// The cache key: query text with `#`-to-end-of-line comments stripped
/// and runs of whitespace collapsed to one space (and trimmed at both
/// ends), except inside `"…"` string literals where every byte is
/// significant. `SELECT * WHERE { ?s <p> ?o . }` and its pretty-printed
/// or commented forms share one cache entry; queries differing inside a
/// literal do not.
///
/// Comment handling must mirror the parser exactly: `# LIMIT 1` on its
/// own line is dead text while a bare `LIMIT 1` is a modifier, so
/// treating `#` literally would let two semantically different queries
/// collide on one cache key — and the cache would serve one of them the
/// other's plan. Conversely the parser lexes `<…>` verbatim up to the
/// closing `>`, so a `#` *inside* an IRI (`<http://ex.org/ns#p>`) is not
/// a comment — IRI spans are preserved byte-for-byte here too. Where the
/// grammar is ambiguous without full parsing (a `<` that is really a
/// FILTER less-than), this errs toward *distinct* keys: a conservative
/// key costs a duplicate plan, never a wrong one.
pub fn canonicalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_space = false;
    let mut in_string = false;
    let mut in_iri = false;
    let mut in_comment = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        if in_iri {
            out.push(c);
            if c == '>' {
                in_iri = false;
            }
            continue;
        }
        if in_comment {
            if c == '\n' {
                in_comment = false;
                pending_space = !out.is_empty();
            }
            continue;
        }
        if c == '#' {
            // A comment runs to end of line and reads as whitespace,
            // exactly like the parser's lexer skips it.
            in_comment = true;
            continue;
        }
        if c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        out.push(c);
        if c == '"' {
            in_string = true;
        } else if c == '<' {
            in_iri = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::from_ntriples(
            r#"
            <a> <p> <b> .
            <a> <p> <c> .
            <b> <q> <x> .
        "#,
        )
        .unwrap()
    }

    #[test]
    fn canonicalization_collapses_whitespace_outside_strings() {
        assert_eq!(
            canonicalize("  SELECT *\n\tWHERE  { ?s <p> ?o . }\n"),
            "SELECT * WHERE { ?s <p> ?o . }"
        );
        // Whitespace inside a string literal is preserved verbatim…
        assert_eq!(
            canonicalize("SELECT * WHERE { ?s <p> \"a  b\\\"c  d\" . }"),
            "SELECT * WHERE { ?s <p> \"a  b\\\"c  d\" . }"
        );
        // …so two queries differing only inside a literal stay distinct.
        assert_ne!(
            canonicalize("ASK { ?s <p> \"a b\" . }"),
            canonicalize("ASK { ?s <p> \"a  b\" . }")
        );
    }

    #[test]
    fn canonicalization_strips_comments_like_the_parser() {
        // A commented-out modifier is dead text; a live one is not. The
        // two must NOT share a cache key (regression: a literal '#' let
        // them collide and the cache served one query the other's plan).
        let commented = "SELECT * WHERE { ?s <p> ?o . }\n# LIMIT 1";
        let live = "SELECT * WHERE { ?s <p> ?o . }\nLIMIT 1";
        assert_ne!(canonicalize(commented), canonicalize(live));
        assert_eq!(canonicalize(commented), "SELECT * WHERE { ?s <p> ?o . }");
        // A trailing comment hiding a modifier keeps the modifier dead.
        assert_eq!(
            canonicalize("SELECT * WHERE { ?s <p> ?o . } #\nLIMIT 1"),
            "SELECT * WHERE { ?s <p> ?o . } LIMIT 1"
        );
        // Comment-only differences share one key (parser-equivalent).
        assert_eq!(
            canonicalize("# header\nASK { ?s <p> ?o . } # trailing"),
            canonicalize("ASK { ?s <p> ?o . }")
        );
        // '#' inside an IRI is part of the IRI, never a comment…
        assert_eq!(
            canonicalize("ASK { ?s <http://ex.org/ns#p> ?o . }"),
            "ASK { ?s <http://ex.org/ns#p> ?o . }"
        );
        // …and distinct fragments stay distinct keys.
        assert_ne!(
            canonicalize("ASK { ?s <http://e/#a> ?o . }"),
            canonicalize("ASK { ?s <http://e/#b> ?o . }")
        );
        // '#' inside a string literal is literal text.
        assert_eq!(
            canonicalize("ASK { ?s <p> \"a#b\" . }"),
            "ASK { ?s <p> \"a#b\" . }"
        );
    }

    #[test]
    fn commented_and_live_modifiers_execute_differently_through_the_cache() {
        let db = db();
        let cache = PlanCache::new(4);
        let commented = db
            .execute_cached(&cache, "SELECT * WHERE { <a> <p> ?o . }\n# LIMIT 1")
            .unwrap();
        let live = db
            .execute_cached(&cache, "SELECT * WHERE { <a> <p> ?o . }\nLIMIT 1")
            .unwrap();
        assert_eq!(commented.rows.len(), 2, "comment is dead text");
        assert_eq!(live.rows.len(), 1, "live LIMIT applies");
        assert_eq!(cache.stats().misses, 2, "two distinct cache entries");
    }

    #[test]
    fn hit_after_prepare() {
        let db = db();
        let cache = PlanCache::new(4);
        let q = "SELECT * WHERE { ?s <p> ?o . }";
        let out1 = db.execute_cached(&cache, q).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
        // Reformatted text hits the same entry.
        let out2 = db
            .execute_cached(&cache, "SELECT *\n  WHERE {\n    ?s <p> ?o .\n  }")
            .unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(out1.rows, out2.rows);
        // And the cached result equals the uncached path.
        assert_eq!(out1.rows, db.execute(q).unwrap().rows);
    }

    #[test]
    fn capacity_one_evicts() {
        let db = db();
        let cache = PlanCache::new(1);
        let q1 = "SELECT * WHERE { ?s <p> ?o . }";
        let q2 = "SELECT * WHERE { ?s <q> ?o . }";
        db.execute_cached(&cache, q1).unwrap();
        assert_eq!(cache.stats().len, 1);
        db.execute_cached(&cache, q2).unwrap(); // evicts q1
        let s = cache.stats();
        assert_eq!((s.misses, s.evictions, s.len), (2, 1, 1));
        db.execute_cached(&cache, q1).unwrap(); // q1 must re-plan
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 3, 2));
        db.execute_cached(&cache, q1).unwrap(); // now a hit
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let db = db();
        let cache = PlanCache::new(2);
        let q1 = "SELECT * WHERE { ?s <p> ?o . }";
        let q2 = "SELECT * WHERE { ?s <q> ?o . }";
        let q3 = "ASK { ?s <p> ?o . }";
        db.execute_cached(&cache, q1).unwrap();
        db.execute_cached(&cache, q2).unwrap();
        db.execute_cached(&cache, q1).unwrap(); // touch q1: q2 is now LRU
        db.execute_cached(&cache, q3).unwrap(); // evicts q2
        db.execute_cached(&cache, q1).unwrap(); // still cached
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 3, 1));
    }

    #[test]
    fn stats_counters_monotone() {
        let db = db();
        let cache = PlanCache::new(2);
        let queries = [
            "SELECT * WHERE { ?s <p> ?o . }",
            "ASK { ?s <q> ?o . }",
            "SELECT ?s WHERE { ?s <p> ?o . } LIMIT 1",
        ];
        let mut prev = cache.stats();
        assert_eq!(prev, CacheStats::default().with_capacity(2));
        for i in 0..12 {
            db.execute_cached(&cache, queries[i % queries.len()])
                .unwrap();
            let now = cache.stats();
            assert!(now.hits >= prev.hits, "hits not monotone");
            assert!(now.misses >= prev.misses, "misses not monotone");
            assert!(now.evictions >= prev.evictions, "evictions not monotone");
            assert_eq!(now.hits + now.misses, i as u64 + 1, "every lookup counted");
            assert!(now.len <= now.capacity);
            prev = now;
        }
        assert!(
            prev.evictions > 0,
            "3 queries through capacity 2 must evict"
        );
    }

    #[test]
    fn update_epoch_invalidates_cached_plans() {
        let db = Database::builder()
            .ntriples("<a> <p> <b> .\n<a> <p> <c> .")
            .updatable()
            .build()
            .unwrap();
        let cache = PlanCache::new(4);
        let q = "SELECT * WHERE { <a> <p> ?o . }";
        assert_eq!(db.execute_cached(&cache, q).unwrap().rows.len(), 2);
        assert_eq!(db.execute_cached(&cache, q).unwrap().rows.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.epoch_evictions), (1, 1, 0));

        // An update bumps the epoch; the cached plan must not be served.
        db.update("INSERT DATA { <a> <p> <d> }").unwrap();
        assert_eq!(db.execute_cached(&cache, q).unwrap().rows.len(), 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.epoch_evictions), (1, 2, 1));

        // Re-planned at the new epoch: hits again until the next update.
        assert_eq!(db.execute_cached(&cache, q).unwrap().rows.len(), 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.epoch_evictions), (2, 2, 1));

        // A no-op update leaves the epoch — and the cache — alone.
        db.update("DELETE DATA { <zzz> <zzz> <zzz> }").unwrap();
        assert_eq!(db.execute_cached(&cache, q).unwrap().rows.len(), 3);
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn parse_error_is_not_cached() {
        let db = db();
        let cache = PlanCache::new(4);
        assert!(db.execute_cached(&cache, "SELECT WHERE {").is_err());
        let s = cache.stats();
        assert_eq!((s.len, s.hits), (0, 0));
    }

    impl CacheStats {
        fn with_capacity(mut self, capacity: usize) -> CacheStats {
            self.capacity = capacity;
            self
        }
    }
}
