//! Lemma 3.3 as a data property: after `get_jvar_order` + `prune_triples`,
//! every triple still attached to any triple pattern of an acyclic,
//! well-designed, Cartesian-free query appears in at least one final
//! result (Definition 3.2's minimality) — i.e. the pruning is a *full
//! reducer*. Checked on random graphs × random well-designed queries.

use lbr::core::bindings::{Binding, VarTable};
use lbr::core::init::{init, TpData};
use lbr::core::jvar_order::get_jvar_order;
use lbr::core::multiway::{multi_way_join, JoinInputs};
use lbr::core::prune::{prune_triples, PruneOutcome, PruneScratch};
use lbr::core::selectivity::estimate_all;
use lbr::sparql::algebra::{GraphPattern, TermPattern, TriplePattern};
use lbr::sparql::classify::analyze;
use lbr::{Catalog, Term, Triple};
use proptest::prelude::*;

const ENTITIES: [&str; 8] = ["e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"];
const PREDICATES: [&str; 4] = ["p0", "p1", "p2", "p3"];

fn arb_graph() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0usize..8, 0usize..4, 0usize..8), 1..50).prop_map(|ts| {
        ts.into_iter()
            .map(|(s, p, o)| {
                Triple::new(
                    Term::iri(ENTITIES[s]),
                    Term::iri(PREDICATES[p]),
                    Term::iri(ENTITIES[o]),
                )
            })
            .collect()
    })
}

/// Small deterministic WD query family: a master chain with 0–2 OPTIONAL
/// blocks hanging off it, parameterized by predicate choices.
fn shaped_query(shape: u8, p: [usize; 5]) -> GraphPattern {
    let v = |n: &str| TermPattern::Var(n.to_string());
    let pc = |i: usize| TermPattern::Const(Term::iri(PREDICATES[i]));
    let tp = |s: TermPattern, i: usize, o: TermPattern| TriplePattern::new(s, pc(i), o);
    let master = GraphPattern::Bgp(vec![tp(v("a"), p[0], v("b")), tp(v("b"), p[1], v("c"))]);
    match shape % 4 {
        0 => GraphPattern::left_join(master, GraphPattern::Bgp(vec![tp(v("c"), p[2], v("d"))])),
        1 => GraphPattern::left_join(
            GraphPattern::left_join(master, GraphPattern::Bgp(vec![tp(v("b"), p[2], v("d"))])),
            GraphPattern::Bgp(vec![tp(v("a"), p[3], v("e"))]),
        ),
        2 => GraphPattern::left_join(
            master,
            GraphPattern::Bgp(vec![tp(v("c"), p[2], v("d")), tp(v("d"), p[3], v("f"))]),
        ),
        _ => GraphPattern::left_join(
            master,
            GraphPattern::left_join(
                GraphPattern::Bgp(vec![tp(v("b"), p[2], v("d"))]),
                GraphPattern::Bgp(vec![tp(v("d"), p[4], v("g"))]),
            ),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn pruning_is_a_full_reducer(
        triples in arb_graph(),
        shape in 0u8..4,
        p in [0usize..4, 0usize..4, 0usize..4, 0usize..4, 0usize..4],
    ) {
        let db = lbr::Database::from_triples(triples);
        let pattern = shaped_query(shape, p);
        prop_assume!(lbr::sparql::is_well_designed(&pattern));
        let analyzed = analyze(&pattern).unwrap();
        prop_assume!(!analyzed.class.cyclic && analyzed.class.connected);
        let gosn = &analyzed.gosn;
        let vt = VarTable::from_tps(gosn.tps()).unwrap();
        let est = estimate_all(gosn.tps(), db.dict(), db.store());
        let jorder = get_jvar_order(gosn, &analyzed.goj, &vt, &est);
        let mut loaded = init(gosn, &vt, &jorder, &est, db.dict(), db.store()).unwrap();
        let outcome = prune_triples(
            &mut loaded.tps, gosn, &analyzed.goj, &vt, &jorder, &db.store().dims(),
            &mut PruneScratch::new(),
        );
        if outcome == PruneOutcome::EmptyAbsoluteMaster {
            return Ok(()); // nothing left to be minimal about
        }
        for tp in &mut loaded.tps {
            tp.build_adjacency();
        }
        let inputs = JoinInputs {
            tps: &loaded.tps,
            gosn,
            vt: &vt,
            dims: db.store().dims(),
            dict: db.dict(),
            fan_filters: Vec::new(),
            quota: None,
            deadline: None,
        };
        let (rows, stats) = multi_way_join(&inputs);
        prop_assert_eq!(stats.nullification_fired, 0, "Lemma 3.3 violated (repair fired)");

        // Minimality: every surviving triple of every TP occurs in ≥1 row.
        let n_shared = db.store().dims().n_shared;
        for state in &loaded.tps {
            match &state.data {
                TpData::Zero { present } => {
                    prop_assert!(!present || !rows.is_empty());
                }
                TpData::One { var, dim, cands } => {
                    for id in cands.iter_ones() {
                        let want = Binding::new(id, *dim, n_shared);
                        prop_assert!(
                            rows.iter().any(|r| r[*var] == Some(want)),
                            "dangling candidate {id} of tp{} (?{})",
                            state.id, vt.name(*var)
                        );
                    }
                }
                TpData::Two { row_var, row_dim, col_var, col_dim, mat } => {
                    for (r, c) in mat.iter() {
                        let wr = Binding::new(r, *row_dim, n_shared);
                        let wc = Binding::new(c, *col_dim, n_shared);
                        prop_assert!(
                            rows.iter().any(|row| {
                                row[*row_var] == Some(wr) && row[*col_var] == Some(wc)
                            }),
                            "dangling triple ({r},{c}) of tp{}",
                            state.id
                        );
                    }
                }
                TpData::Three { .. } => unreachable!("shapes have fixed predicates"),
            }
        }
    }
}
