//! The on-disk index must be execution-equivalent to the in-memory store:
//! every Appendix E query run through a `DiskCatalog` (lazy per-TP loads,
//! as the paper's LBR does against its 20–41 GB on-disk indexes) produces
//! exactly the rows of the in-memory run.

use lbr::bitmat::disk::save_store;
use lbr::datagen::{lubm, uniprot};
use lbr::{parse_query, Database, DiskCatalog, LbrEngine};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lbr_it_{name}_{}.idx", std::process::id()))
}

#[test]
fn lubm_queries_identical_on_disk() {
    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 1,
        departments: 3,
        seed: 21,
    });
    let db = Database::from_encoded(ds.graph.clone().encode());
    let path = tmp("lubm");
    save_store(db.store(), &path).unwrap();
    let disk = DiskCatalog::open(&path).unwrap();
    let engine = LbrEngine::new(&disk, db.dict());
    for q in &ds.queries {
        let query = parse_query(&q.text).unwrap();
        let mem = db.execute_query(&query).unwrap();
        let dsk = engine.execute(&query).unwrap();
        let mut a = mem.rows.clone();
        let mut b = dsk.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "disk/memory divergence on LUBM {}", q.id);
        assert_eq!(
            mem.stats.initial_triples, dsk.stats.initial_triples,
            "{}",
            q.id
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn uniprot_queries_identical_on_disk() {
    let ds = uniprot::dataset(&uniprot::UniProtConfig {
        proteins: 150,
        taxa: 8,
        seed: 22,
    });
    let db = Database::from_encoded(ds.graph.clone().encode());
    let path = tmp("uniprot");
    save_store(db.store(), &path).unwrap();
    let disk = DiskCatalog::open(&path).unwrap();
    let engine = LbrEngine::new(&disk, db.dict());
    for q in &ds.queries {
        let query = parse_query(&q.text).unwrap();
        let mut a = db.execute_query(&query).unwrap().rows;
        let mut b = engine.execute(&query).unwrap().rows;
        a.sort();
        b.sort();
        assert_eq!(a, b, "disk/memory divergence on UniProt {}", q.id);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_var_pattern_on_disk() {
    // The (?s ?p ?o) extension exercises load_so across every predicate.
    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 1,
        departments: 1,
        seed: 23,
    });
    let db = Database::from_encoded(ds.graph.clone().encode());
    let path = tmp("allvar");
    save_store(db.store(), &path).unwrap();
    let disk = DiskCatalog::open(&path).unwrap();
    let engine = LbrEngine::new(&disk, db.dict());
    let query = parse_query("SELECT * WHERE { ?s ?p ?o . }").unwrap();
    let out = engine.execute(&query).unwrap();
    assert_eq!(
        out.len(),
        db.len(),
        "(?s ?p ?o) must scan the whole dataset"
    );
    std::fs::remove_file(&path).ok();
}

/// The PR-10 acceptance bar: the mmap'd store answers **byte-equal** to
/// the heap store on every engine behind `EngineKind`, at every thread
/// count — compared at the ID level (raw result rows), before any
/// decode, so the equality really is byte-for-byte.
#[test]
fn every_engine_and_thread_count_agrees_on_mmap() {
    use lbr::baseline::EngineOptions;
    use lbr::EngineKind;

    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 1,
        departments: 2,
        seed: 21,
    });
    let graph = ds.graph.clone().encode();
    let heap = Database::from_encoded(graph.clone());
    let path = tmp("allengines");
    save_store(heap.store(), &path).unwrap();
    let mapped = Database::builder()
        .encoded(graph)
        .disk_index(&path)
        .build()
        .unwrap();

    for q in &ds.queries {
        let query = parse_query(&q.text).unwrap();
        for kind in EngineKind::all() {
            for threads in [1usize, 2, 8] {
                let opts = EngineOptions {
                    threads,
                    ..EngineOptions::default()
                };
                let mut a = heap
                    .engine_with(kind, &opts)
                    .execute(&query)
                    .unwrap_or_else(|e| panic!("heap {kind} t{threads} {}: {e}", q.id))
                    .rows;
                let mut b = mapped
                    .engine_with(kind, &opts)
                    .execute(&query)
                    .unwrap_or_else(|e| panic!("mmap {kind} t{threads} {}: {e}", q.id))
                    .rows;
                a.sort();
                b.sort();
                assert_eq!(a, b, "{kind} (threads={threads}) diverges on {}", q.id);
            }
        }
    }
    std::fs::remove_file(&path).ok();
}
