//! Tests of the public API redesign: the `Database` builder,
//! `PreparedQuery` plan caching, and the streaming `Solutions` path.

use lbr::{parse_query, Database, EngineKind, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

fn triples() -> Vec<Triple> {
    vec![
        t("Jerry", "hasFriend", "Julia"),
        t("Jerry", "hasFriend", "Larry"),
        t("Julia", "actedIn", "Seinfeld"),
        t("Larry", "actedIn", "CurbYourEnthu"),
        t("Seinfeld", "location", "NewYorkCity"),
        t("CurbYourEnthu", "location", "LosAngeles"),
    ]
}

const Q2: &str = "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
    OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }";

const WORKLOAD: [&str; 7] = [
    Q2,
    "PREFIX : <> SELECT ?friend WHERE { :Jerry :hasFriend ?friend . }",
    "PREFIX : <> SELECT * WHERE {
       { ?a :actedIn ?s . ?s :location :NewYorkCity . }
       UNION { ?a :actedIn ?s . ?s :location :LosAngeles . } }",
    "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
       OPTIONAL { ?f :actedIn ?s . FILTER(?s != :Seinfeld) } }",
    // Query forms & solution modifiers ride the same prepared/streaming
    // paths as plain SELECTs.
    "PREFIX : <> SELECT DISTINCT ?friend WHERE { :Jerry :hasFriend ?friend . ?friend :actedIn ?s . }",
    "PREFIX : <> SELECT ?friend ?s WHERE { :Jerry :hasFriend ?friend . ?friend :actedIn ?s . }
       ORDER BY ?friend DESC(?s) LIMIT 2 OFFSET 1",
    "PREFIX : <> ASK { :Jerry :hasFriend ?friend . }",
];

#[test]
fn builder_sources_agree() {
    let doc = "<a> <p> <b> .\n<b> <p> <c> .";
    let from_text = Database::builder().ntriples(doc).build().unwrap();
    let from_triples = Database::builder()
        .triples(vec![t("a", "p", "b"), t("b", "p", "c")])
        .build()
        .unwrap();
    let from_encoded = Database::builder()
        .encoded(lbr::Graph::from_triples(vec![t("a", "p", "b"), t("b", "p", "c")]).encode())
        .build()
        .unwrap();
    let q = "SELECT * WHERE { ?x <p> ?y . }";
    let expect = {
        let mut rows = from_text.execute(q).unwrap().render(from_text.dict());
        rows.sort();
        rows
    };
    for db in [&from_triples, &from_encoded] {
        let mut rows = db.execute(q).unwrap().render(db.dict());
        rows.sort();
        assert_eq!(rows, expect);
    }
}

#[test]
fn builder_without_source_errors() {
    let Err(err) = Database::builder().build() else {
        panic!("builder without a source must fail");
    };
    assert!(err.to_string().contains("no triple source"), "{err}");
}

#[test]
fn builder_ntriples_file_and_disk_index() {
    let dir = std::env::temp_dir().join("lbr-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    let nt = dir.join("data.nt");
    std::fs::write(&nt, "<a> <p> <b> .\n<a> <p> <c> .\n").unwrap();

    let db = Database::builder().ntriples_file(&nt).build().unwrap();
    assert_eq!(db.len(), 2);

    // Persist the index, then query it lazily from disk.
    let idx = dir.join("data.lbr");
    lbr::bitmat::disk::save_store(db.store(), &idx).unwrap();
    let disk_db = Database::builder()
        .ntriples_file(&nt)
        .disk_index(&idx)
        .build()
        .unwrap();
    let q = "SELECT * WHERE { <a> <p> ?o . }";
    let mut mem_rows = db.execute(q).unwrap().render(db.dict());
    let mut disk_rows = disk_db.execute(q).unwrap().render(disk_db.dict());
    mem_rows.sort();
    disk_rows.sort();
    assert_eq!(mem_rows, disk_rows);
}

#[test]
fn builder_rejects_mismatched_disk_index() {
    let dir = std::env::temp_dir().join("lbr-api-test-mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    let nt = dir.join("data.nt");
    std::fs::write(&nt, "<a> <p> <b> .\n").unwrap();
    let idx = dir.join("data.lbr");
    let db = Database::builder().ntriples_file(&nt).build().unwrap();
    lbr::bitmat::disk::save_store(db.store(), &idx).unwrap();

    // Same index, different data: silently-wrong answers must be refused.
    let other = dir.join("other.nt");
    std::fs::write(&other, "<a> <p> <b> .\n<c> <p> <d> .\n").unwrap();
    let Err(err) = Database::builder()
        .ntriples_file(&other)
        .disk_index(&idx)
        .build()
    else {
        panic!("mismatched disk index must be rejected");
    };
    assert!(err.to_string().contains("does not match the data"), "{err}");
}

#[test]
fn builder_default_engine_is_honored() {
    for kind in EngineKind::all() {
        let db = Database::builder()
            .triples(triples())
            .engine(kind)
            .build()
            .unwrap();
        assert_eq!(db.engine_kind(), kind);
        assert_eq!(db.engine().name(), kind.name());
        let mut rows = db.execute(Q2).unwrap().render(db.dict());
        rows.sort();
        assert_eq!(
            rows,
            vec![
                "<Julia>\t<Seinfeld>".to_string(),
                "<Larry>\tNULL".to_string()
            ],
            "{kind}"
        );
    }
}

/// PreparedQuery re-execution must match one-shot execution, for every
/// engine, on every workload query — and repeatedly (the cached plan is
/// not consumed).
#[test]
fn prepared_reexecution_matches_one_shot() {
    for kind in EngineKind::all() {
        let db = Database::builder()
            .triples(triples())
            .engine(kind)
            .build()
            .unwrap();
        for query in WORKLOAD {
            let one_shot = {
                let mut rows = db.execute(query).unwrap().render(db.dict());
                rows.sort();
                rows
            };
            let prepared = db.prepare(query).unwrap();
            assert_eq!(prepared.engine_kind(), kind);
            for _ in 0..3 {
                let mut rows = prepared.execute().unwrap().render(db.dict());
                rows.sort();
                assert_eq!(rows, one_shot, "{kind} deviates when prepared on {query}");
            }
        }
    }
}

/// A plan produced by one engine must not poison another: re-binding the
/// query to a different engine falls back to unprepared execution.
#[test]
fn foreign_plan_falls_back_to_execute() {
    let db = Database::from_triples(triples());
    let query = parse_query(Q2).unwrap();
    let lbr_engine = db.engine_of(EngineKind::Lbr);
    let plan = lbr_engine.plan_query(&query).unwrap();
    let pairwise = db.engine_of(EngineKind::PairwiseSelectivity);
    let out = pairwise.execute_planned(&query, plan.as_ref()).unwrap();
    let mut rows = out.render(db.dict());
    rows.sort();
    assert_eq!(rows, vec!["<Julia>\t<Seinfeld>", "<Larry>\tNULL"]);
}

#[test]
fn solutions_named_accessors() {
    let db = Database::from_triples(triples());
    let mut seen = Vec::new();
    for row in db.solutions(Q2).unwrap() {
        assert_eq!(row.vars(), ["friend".to_string(), "sitcom".to_string()]);
        let friend = row.term("friend").expect("friend always bound");
        let sitcom = row.term("sitcom").map(|t| t.to_string());
        assert_eq!(row.is_bound("sitcom"), sitcom.is_some());
        assert_eq!(row.term("not-a-var"), None);
        assert!(row.binding("friend").is_some());
        seen.push((friend.to_string(), sitcom));
    }
    seen.sort();
    assert_eq!(
        seen,
        vec![
            ("<Julia>".to_string(), Some("<Seinfeld>".to_string())),
            ("<Larry>".to_string(), None),
        ]
    );
}

#[test]
fn solutions_match_query_output_row_for_row() {
    let db = Database::from_triples(triples());
    for query in WORKLOAD {
        let materialized = db.execute(query).unwrap();
        let expect = materialized.render(db.dict());
        let streamed: Vec<String> = db
            .solutions(query)
            .unwrap()
            .map(|row| row.render())
            .collect();
        assert_eq!(streamed, expect, "streaming deviates on {query}");

        // And collect_output round-trips losslessly.
        let collected = db.solutions(query).unwrap().collect_output();
        assert_eq!(collected.vars, materialized.vars);
        assert_eq!(collected.rows, materialized.rows);
    }
}

#[test]
fn prepared_solutions_and_stats() {
    let db = Database::from_triples(triples());
    let prepared = db.prepare(Q2).unwrap();
    let solutions = prepared.solutions().unwrap();
    assert_eq!(
        solutions.vars(),
        ["friend".to_string(), "sitcom".to_string()]
    );
    assert_eq!(solutions.stats().n_results, 2);
    assert_eq!(solutions.stats().n_results_with_nulls, 1);
    assert_eq!(solutions.count(), 2);
}

#[test]
fn prepared_explain_shows_the_plan() {
    let db = Database::from_triples(triples());
    let prepared = db.prepare(Q2).unwrap();
    let text = prepared.explain().unwrap();
    assert!(text.contains("GoSN"), "{text}");
    assert!(text.contains("jvar order"), "{text}");

    // Baselines explain too (generically), through the same call.
    let db = Database::builder()
        .triples(triples())
        .engine(EngineKind::Reordered)
        .build()
        .unwrap();
    let text = db.prepare(Q2).unwrap().explain().unwrap();
    assert!(text.contains("reordered"), "{text}");
}

#[test]
fn ask_and_modifiers_through_the_database_api() {
    let db = Database::from_triples(triples());
    assert!(db
        .ask("PREFIX : <> ASK { :Jerry :hasFriend ?f . }")
        .unwrap());
    assert!(!db
        .ask("PREFIX : <> ASK { :Julia :hasFriend ?f . }")
        .unwrap());
    // SELECT text works too (existence of any solution).
    assert!(db
        .ask("PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f . }")
        .unwrap());
    // ASK output surfaces through QueryOutput::boolean and Solutions.
    let out = db
        .execute("PREFIX : <> ASK { :Jerry :hasFriend ?f . }")
        .unwrap();
    assert_eq!(out.boolean(), Some(true));
    assert_eq!(out.len(), 1);
    let solutions = db
        .solutions("PREFIX : <> ASK { :Jerry :hasFriend ?f . }")
        .unwrap();
    assert_eq!(solutions.vars(), Vec::<String>::new().as_slice());
    assert_eq!(solutions.count(), 1, "one zero-column row = true");
    // Prepared ASK re-executes cheaply and keeps its boolean shape.
    let prepared = db
        .prepare("PREFIX : <> ASK { :Nobody :hasFriend ?f . }")
        .unwrap();
    for _ in 0..3 {
        assert_eq!(prepared.execute().unwrap().boolean(), Some(false));
    }
    // Modifiers through the one-shot API: deterministic ordered slice.
    let out = db
        .execute(
            "PREFIX : <> SELECT ?s WHERE { :Jerry :hasFriend ?f . ?f :actedIn ?s . }
               ORDER BY DESC(?s) LIMIT 2",
        )
        .unwrap();
    assert_eq!(
        out.render(db.dict()),
        vec!["<Seinfeld>".to_string(), "<CurbYourEnthu>".to_string()]
    );
}

#[test]
fn engine_trait_objects_expose_names_and_dict() {
    let db = Database::from_triples(triples());
    for kind in EngineKind::all() {
        let engine = db.engine_of(kind);
        assert_eq!(engine.name(), kind.name());
        assert!(std::ptr::eq(engine.dict(), db.dict()));
    }
}
