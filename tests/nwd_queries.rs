//! Non-well-designed (NWD) query handling (Appendices B and C): the GoSN
//! transformation converts the violating left-outer joins into inner
//! joins. That transformation *defines* the paper's NWD semantics; it
//! coincides with SQL's null-intolerant evaluation of the original query
//! when the violating OPTIONAL feeds a downstream null-intolerant inner
//! join (the classic Galindo-Legaria simplification), and deviates — by
//! design — when the violation hides under further OPTIONALs. The engine
//! must therefore match the oracle on the *transformed* pattern always,
//! and on the original-under-SQL where the simplification applies.

use lbr::baseline::{evaluate_reference, Semantics};
use lbr::sparql::{classify, is_well_designed, transform_nwd_pattern, violations};
use lbr::{parse_query, Database, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// LBR's NWD output must equal the oracle's evaluation of the
/// Appendix-B-transformed pattern. UNION queries are rewritten to UNION
/// normal form first (the transformation is defined per union-free
/// branch); both sides pass through best-match so rule-(3) spurious rows
/// compare as minimum-unions.
#[track_caller]
fn assert_transformed_semantics(db: &Database, query: &str) {
    let q = parse_query(query).unwrap();
    assert!(!is_well_designed(&q.pattern), "test query should be NWD");
    let out = db.execute_query(&q).unwrap();
    let proj = q.projected_vars();

    // Oracle: per-UNF-branch transformation, bag-unioned, minimum-union'd.
    let mut truth_rows: Vec<Vec<Option<lbr::core::Binding>>> = Vec::new();
    for branch in lbr::sparql::rewrite_to_unf(&q.pattern) {
        let transformed = lbr::Query::select_all(transform_nwd_pattern(&branch.pattern));
        assert!(
            is_well_designed(&transformed.pattern),
            "transformation must converge to WD"
        );
        let rel =
            evaluate_reference(&transformed, db.dict(), db.store(), Semantics::Sparql).unwrap();
        let cols: Vec<Option<usize>> = proj
            .iter()
            .map(|v| rel.vars.iter().position(|x| x == v))
            .collect();
        truth_rows.extend(rel.rows.iter().map(|r| {
            cols.iter()
                .map(|c| c.and_then(|i| r[i]))
                .collect::<Vec<_>>()
        }));
    }
    lbr::core::best_match::best_match(&mut truth_rows);

    let cols: Vec<usize> = proj
        .iter()
        .map(|v| out.vars.iter().position(|x| x == v).unwrap())
        .collect();
    let mut got: Vec<Vec<Option<lbr::core::Binding>>> = out
        .rows
        .iter()
        .map(|r| cols.iter().map(|&c| r[c]).collect())
        .collect();
    lbr::core::best_match::best_match(&mut got);
    got.sort();
    truth_rows.sort();
    assert_eq!(got, truth_rows, "NWD semantics mismatch on {query}");
}

#[test]
fn textbook_nwd_px_py_pz() {
    // Px ⟕ (Py ⟕ Pz) with ?j in Pz and Px but not Py — the Appendix B
    // running shape.
    let db = Database::from_triples(vec![
        t("j1", "p1", "x1"),
        t("j2", "p1", "x2"),
        t("x1", "p2", "y1"),
        t("j1", "p3", "z1"),
        t("j3", "p3", "z3"),
    ]);
    assert_transformed_semantics(
        &db,
        "PREFIX : <> SELECT * WHERE { ?j :p1 ?x .
           OPTIONAL { ?x :p2 ?y . OPTIONAL { ?j :p3 ?z . } } }",
    );
}

#[test]
fn appendix_c_join_over_possible_null() {
    let db = Database::from_triples(vec![
        t("Jerry", "hasFriend", "Julia"),
        t("Jerry", "hasFriend", "Larry"),
        t("Julia", "actedIn", "Seinfeld"),
        t("Friends", "location", "NewYorkCity"),
        t("Seinfeld", "location", "NewYorkCity"),
    ]);
    let query = "PREFIX : <> SELECT * WHERE {
        { :Jerry :hasFriend ?f . OPTIONAL { ?f :actedIn ?s . } }
        { ?s :location :NewYorkCity . } }";
    assert_transformed_semantics(&db, query);
    // For this shape the transformation IS the Galindo-Legaria
    // simplification: the engine also matches SQL-on-the-original.
    {
        let q = parse_query(query).unwrap();
        let out = db.execute_query(&q).unwrap();
        let sql = evaluate_reference(&q, db.dict(), db.store(), Semantics::NullIntolerant).unwrap();
        assert_eq!(out.len(), sql.rows.len());
    }
    // And the two semantics genuinely differ here (Appendix C's point):
    let q = parse_query(query).unwrap();
    let sparql = evaluate_reference(&q, db.dict(), db.store(), Semantics::Sparql).unwrap();
    let sql = evaluate_reference(&q, db.dict(), db.store(), Semantics::NullIntolerant).unwrap();
    assert_eq!(
        sparql.rows.len(),
        3,
        "compatible-mapping semantics keeps Larry×2"
    );
    assert_eq!(
        sql.rows.len(),
        1,
        "null-intolerant keeps only Julia/Seinfeld"
    );
}

#[test]
fn violation_report_names_the_supernodes() {
    let q = parse_query(
        "PREFIX : <> SELECT * WHERE { ?j :p1 ?x .
           OPTIONAL { ?x :p2 ?y . OPTIONAL { ?j :p3 ?z . } } }",
    )
    .unwrap();
    let v = violations(&q.pattern);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].var, "j");
    assert_eq!((v[0].slave_sn, v[0].outside_sn), (2, 0));
    // After the transformation the classification reports well-designed
    // handling is unnecessary, but the class remembers the origin.
    let c = classify(&q.pattern).unwrap();
    assert!(!c.well_designed);
}

#[test]
fn nwd_with_union_branches() {
    // The NWD transform must run per UNF branch.
    let db = Database::from_triples(vec![
        t("j1", "p1", "x1"),
        t("j1", "p3", "z1"),
        t("j1", "p4", "z2"),
        t("x1", "p2", "y1"),
    ]);
    assert_transformed_semantics(
        &db,
        "PREFIX : <> SELECT * WHERE { ?j :p1 ?x .
           OPTIONAL { ?x :p2 ?y .
             OPTIONAL { { ?j :p3 ?z . } UNION { ?j :p4 ?z . } } } }",
    );
}

#[test]
fn deep_nwd_cascades_to_peers() {
    // Figure B.1's shape with data: after transformation b, e, f are peers
    // of the absolute masters, so their TPs act as inner joins.
    let db = Database::from_triples(vec![
        t("a1", "pa", "a2x"),
        t("a2x", "pb", "J"),
        t("J", "pc", "c1"),
        t("c1", "pd", "d1"),
        t("c1", "pe", "e1"),
        t("e1", "pf", "J"),
        // A second chain that breaks at pf.
        t("b1", "pa", "b2x"),
        t("b2x", "pb", "K"),
        t("K", "pc", "c2"),
        t("c2", "pe", "e2"),
    ]);
    assert_transformed_semantics(
        &db,
        "PREFIX : <> SELECT * WHERE {
           { ?a1 :pa ?a2 . OPTIONAL { ?a2 :pb ?j . } }
           { { ?j :pc ?c2 . OPTIONAL { ?c2 :pd ?d2 . } }
             OPTIONAL { ?c2 :pe ?e2 . OPTIONAL { ?e2 :pf ?j . } } } }",
    );
}
