//! End-to-end runs of the Appendix E workloads at test scale: every query
//! must (a) agree with the pairwise baseline row-for-row, and (b) exhibit
//! the qualitative behaviour the paper's tables report (empty results
//! detected early, best-match requirements, NULL-heavy outputs).

use lbr::baseline::{JoinOrder, PairwiseEngine};
use lbr::datagen::{dbpedia, lubm, uniprot, Dataset};
use lbr::{parse_query, Database};

fn check_dataset(ds: &Dataset) -> Vec<(String, lbr::QueryOutput)> {
    let db = Database::from_encoded(ds.graph.clone().encode());
    let mut outputs = Vec::new();
    for q in &ds.queries {
        let query = parse_query(&q.text).unwrap();
        let out = db
            .execute_query(&query)
            .unwrap_or_else(|e| panic!("{} {} failed: {e}", ds.name, q.id));
        // Cross-check against the pairwise engine.
        let rel = PairwiseEngine::new(db.store(), db.dict(), JoinOrder::Selectivity)
            .execute(&query)
            .unwrap();
        let mut lbr_rows: Vec<Vec<Option<lbr::core::Binding>>> = out.rows.clone();
        let proj = query.projected_vars();
        let cols: Vec<usize> = proj
            .iter()
            .map(|v| rel.vars.iter().position(|x| x == v).unwrap())
            .collect();
        let mut base_rows: Vec<Vec<Option<lbr::core::Binding>>> = rel
            .rows
            .iter()
            .map(|r| cols.iter().map(|&c| r[c]).collect())
            .collect();
        lbr_rows.sort();
        base_rows.sort();
        assert_eq!(
            lbr_rows,
            base_rows,
            "{} {}: LBR and pairwise disagree ({} vs {} rows)",
            ds.name,
            q.id,
            lbr_rows.len(),
            base_rows.len()
        );
        outputs.push((q.id.to_string(), out));
    }
    outputs
}

#[test]
fn lubm_workload_behaviour() {
    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 2,
        departments: 4,
        seed: 11,
    });
    let outputs = check_dataset(&ds);
    let get = |id: &str| &outputs.iter().find(|(i, _)| i == id).unwrap().1;

    // Q1–Q3: low-selectivity, many results, no best-match (cyclic GoJ but
    // single-jvar slaves / acyclic).
    for id in ["Q1", "Q2", "Q3"] {
        let out = get(id);
        assert!(!out.is_empty(), "LUBM {id} empty");
        assert!(!out.stats.nb_required, "LUBM {id} should avoid best-match");
    }
    // Q4/Q5: cyclic with a 3-jvar slave → best-match required (Table 6.2).
    for id in ["Q4", "Q5"] {
        let out = get(id);
        assert!(out.stats.nb_required, "LUBM {id} must require best-match");
        assert!(!out.is_empty());
    }
    // Q6: acyclic, tiny result set over one department.
    let q6 = get("Q6");
    assert!(!q6.stats.nb_required);
    assert!(!q6.is_empty());
    // Pruning bites on the low-selectivity queries.
    let q1 = get("Q1");
    assert!(
        q1.stats.triples_after_pruning < q1.stats.initial_triples,
        "Q1 pruning had no effect"
    );
}

#[test]
fn uniprot_workload_behaviour() {
    let ds = uniprot::dataset(&uniprot::UniProtConfig {
        proteins: 400,
        taxa: 10,
        seed: 12,
    });
    let outputs = check_dataset(&ds);
    let get = |id: &str| &outputs.iter().find(|(i, _)| i == id).unwrap().1;

    // All seven queries are acyclic: no best-match anywhere (Table 6.3).
    for (id, out) in &outputs {
        assert!(
            !out.stats.nb_required,
            "UniProt {id} should not need best-match"
        );
    }
    // Q2: empty, detected by active pruning.
    let q2 = get("Q2");
    assert!(q2.is_empty());
    assert!(q2.stats.aborted_empty, "Q2 must abort early");
    // Q4: all rows have NULLs (the OPTIONAL side is semi-joined away).
    let q4 = get("Q4");
    assert!(!q4.is_empty());
    assert_eq!(
        q4.rows_with_nulls(),
        q4.len(),
        "Q4 rows must all carry NULLs"
    );
    // Q1: large result with a mix of bound and NULL rows.
    let q1 = get("Q1");
    assert!(q1.len() > 100);
    assert!(q1.rows_with_nulls() > 0);
    assert!(q1.rows_with_nulls() < q1.len());
}

#[test]
fn dbpedia_workload_behaviour() {
    let ds = dbpedia::dataset(&dbpedia::DbpediaConfig {
        places: 150,
        persons: 220,
        companies: 60,
        tail_predicates: 40,
        seed: 13,
    });
    let outputs = check_dataset(&ds);
    let get = |id: &str| &outputs.iter().find(|(i, _)| i == id).unwrap().1;

    // All six queries acyclic (Table 6.4): no best-match.
    for (id, out) in &outputs {
        assert!(
            !out.stats.nb_required,
            "DBPedia {id} should not need best-match"
        );
    }
    // Q2, Q3: empty with early abort.
    for id in ["Q2", "Q3"] {
        let out = get(id);
        assert!(out.is_empty(), "DBPedia {id} must be empty");
        assert!(out.stats.aborted_empty, "DBPedia {id} must abort early");
    }
    // Q1: one row per populated place, NULL-heavy (most places lack some
    // of the four optional attributes).
    let q1 = get("Q1");
    assert_eq!(q1.len(), 150, "Q1 yields one row per place");
    assert!(
        q1.rows_with_nulls() > q1.len() / 2,
        "Q1 should be NULL-heavy"
    );
    // Q6: eight OPTIONALs, non-empty.
    assert!(!get("Q6").is_empty());
}
