//! Cross-engine equivalence: every engine behind [`EngineKind`] — the LBR
//! engine, both pairwise hash-join configurations, the reordering baseline
//! and the nested-loop reference oracle — must produce identical result
//! bags on well-designed queries.
//!
//! This is the central correctness gate of the reproduction: Lemmas 3.1,
//! 3.3 and 3.4 all cash out as "same rows as the SPARQL algebra". One
//! generic harness runs the whole workload through the shared
//! [`lbr::Engine`] trait, so an engine added to [`EngineKind`] is covered
//! automatically.

use lbr::baseline::{EngineOptions, Semantics};
use lbr::{parse_query, Database, EngineKind, Term, Triple};

/// The intra-query parallelism axis: the serial path, a small fan-out and
/// an oversubscribed one. Only the LBR engine parallelizes today, but the
/// axis runs every kind so an engine gaining threads later is covered
/// automatically.
const THREADS_AXIS: [usize; 3] = [1, 2, 8];

/// Renders an engine's sorted rows (lexical forms, NULL as None) for bag
/// comparison, going through the unified `Engine` trait.
fn engine_rows_with(
    db: &Database,
    kind: EngineKind,
    threads: usize,
    query: &str,
) -> Vec<Vec<Option<String>>> {
    let q = parse_query(query).unwrap();
    let out = db
        .engine_with(
            kind,
            &EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        )
        .execute(&q)
        .unwrap_or_else(|e| panic!("{kind} (threads={threads}) failed on {query}: {e}"));
    let mut rows: Vec<Vec<Option<String>>> = out
        .decode(db.dict())
        .into_iter()
        .map(|r| r.into_iter().map(|t| t.map(|x| x.to_string())).collect())
        .collect();
    rows.sort();
    rows
}

fn engine_rows(db: &Database, kind: EngineKind, query: &str) -> Vec<Vec<Option<String>>> {
    engine_rows_with(db, kind, 1, query)
}

/// Asserts every engine × thread count agrees with the reference oracle
/// (SPARQL semantics — the ground truth for well-designed queries), and
/// that the streaming `Solutions` path is row-for-row identical to the
/// materialized `QueryOutput` path.
#[track_caller]
fn assert_all_agree(db: &Database, query: &str) {
    let truth = engine_rows(db, EngineKind::Reference, query);
    for kind in EngineKind::all() {
        for threads in THREADS_AXIS {
            assert_eq!(
                engine_rows_with(db, kind, threads, query),
                truth,
                "{kind} (threads={threads}) deviates on: {query}"
            );
        }
        assert_streaming_matches_materialized(db, kind, query);
    }
}

/// The streaming path must yield exactly the materialized rows, in order.
#[track_caller]
fn assert_streaming_matches_materialized(db: &Database, kind: EngineKind, query: &str) {
    let q = parse_query(query).unwrap();
    let engine = db.engine_of(kind);
    let materialized = engine.execute(&q).unwrap().render(db.dict());
    let streamed: Vec<String> = engine
        .solutions(&q)
        .unwrap()
        .map(|row| row.render())
        .collect();
    assert_eq!(
        streamed, materialized,
        "{kind}: streaming differs from materialized on: {query}"
    );
}

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

fn sitcom_db() -> Database {
    Database::from_triples(vec![
        t("Julia", "actedIn", "Seinfeld"),
        t("Julia", "actedIn", "Veep"),
        t("Julia", "actedIn", "NewAdvOldChristine"),
        t("Julia", "actedIn", "CurbYourEnthu"),
        t("CurbYourEnthu", "location", "LosAngeles"),
        t("Larry", "actedIn", "CurbYourEnthu"),
        t("Jerry", "hasFriend", "Julia"),
        t("Jerry", "hasFriend", "Larry"),
        t("Seinfeld", "location", "NewYorkCity"),
        t("Veep", "location", "D.C."),
        t("NewAdvOldChristine", "location", "Jersey"),
        t("Jerry", "livesIn", "NewYorkCity"),
        t("Julia", "livesIn", "NewYorkCity"),
        t("Larry", "livesIn", "LosAngeles"),
    ])
}

#[test]
fn paper_q2() {
    let db = sitcom_db();
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?friend .
           OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
    );
}

#[test]
fn paper_q1_shape() {
    // Q1 of §1: one OPTIONAL block with two patterns over the same subject.
    let db = sitcom_db();
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { ?actor :actedIn ?x .
           OPTIONAL { ?actor :livesIn ?city . ?city :location ?where . } }",
    );
}

#[test]
fn nested_and_sibling_optionals() {
    let db = sitcom_db();
    // Nested OPT inside OPT.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :actedIn ?s . OPTIONAL { ?s :location ?l . } } }",
    );
    // Two sibling OPTIONALs.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :actedIn ?s . }
           OPTIONAL { ?f :livesIn ?c . } }",
    );
    // Join of two OPT groups (Fig 2.1(b) shape).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE {
           { ?f :actedIn ?s . OPTIONAL { ?s :location ?l . } }
           { ?f :livesIn ?c . OPTIONAL { ?x :hasFriend ?f . } } }",
    );
}

#[test]
fn cyclic_queries() {
    let db = Database::from_triples(vec![
        t("a1", "p1", "b1"),
        t("b1", "p2", "c1"),
        t("a1", "p3", "c1"),
        t("a2", "p1", "b2"),
        t("b2", "p2", "c2"),
        t("a2", "p3", "c9"), // breaks the cycle for a2
        t("a1", "p4", "z1"),
        t("a2", "p4", "z2"),
    ]);
    // Cyclic BGP (triangle).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { ?a :p1 ?b . ?b :p2 ?c . ?a :p3 ?c . }",
    );
    // Cyclic with a single-jvar slave (Lemma 3.4: no best-match needed).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { ?a :p1 ?b . ?b :p2 ?c . ?a :p3 ?c .
           OPTIONAL { ?a :p4 ?z . } }",
    );
    // Cyclic crossing a slave with two jvars (nullification + best-match
    // required, Fig 3.1's rightmost well-designed class).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { ?a :p1 ?b .
           OPTIONAL { ?a :p3 ?c . ?b :p2 ?c . } }",
    );
}

#[test]
fn nb_required_query_fires_nullification_only_when_cyclic() {
    let db = Database::from_triples(vec![
        t("a1", "p1", "b1"),
        t("a1", "p3", "c1"),
        t("b1", "p2", "c2"), // c mismatch: slave cannot complete as a unit
        t("a2", "p1", "b2"),
        t("a2", "p3", "c3"),
        t("b2", "p2", "c3"), // completes
    ]);
    let query = "PREFIX : <> SELECT * WHERE { ?a :p1 ?b .
        OPTIONAL { ?a :p3 ?c . ?b :p2 ?c . } }";
    let out = db.execute(query).unwrap();
    assert!(out.stats.nb_required, "cyclic, slave has 3 jvars");
    assert_eq!(
        engine_rows(&db, EngineKind::Lbr, query),
        engine_rows(&db, EngineKind::Reference, query)
    );
    // a1's slave must be nullified as a unit: (a1, b1, NULL).
    let rows = engine_rows(&db, EngineKind::Lbr, query);
    assert!(rows.contains(&vec![
        Some("<a1>".to_string()),
        Some("<b1>".to_string()),
        None
    ]));
}

#[test]
fn acyclic_never_fires_nullification() {
    let db = sitcom_db();
    let out = db
        .execute(
            "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
               OPTIONAL { ?f :actedIn ?s . ?s :location ?l . } }",
        )
        .unwrap();
    assert!(!out.stats.nb_required);
    assert_eq!(out.stats.nullification_fired, 0, "Lemma 3.3");
}

#[test]
fn empty_optional_and_empty_master() {
    let db = sitcom_db();
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f . OPTIONAL { ?f :location ?l . } }",
    );
    // Unknown constant in the master: empty, via the early abort.
    let out = db
        .execute(
            "PREFIX : <> SELECT * WHERE { :Nobody :hasFriend ?f . OPTIONAL { ?f :actedIn ?s . } }",
        )
        .unwrap();
    assert!(out.is_empty());
    assert!(out.stats.aborted_empty);
}

#[test]
fn union_queries() {
    let db = sitcom_db();
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE {
           { ?f :actedIn ?s . ?s :location :NewYorkCity . }
           UNION { ?f :actedIn ?s . ?s :location :LosAngeles . } }",
    );
    // UNION under a join.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           { { ?f :livesIn :NewYorkCity . } UNION { ?f :livesIn :LosAngeles . } } }",
    );
}

#[test]
fn union_inside_optional_needs_spurious_removal() {
    // Rule (3): P1 ⟕ (P2 ∪ P3). The rewritten branches each produce a
    // NULL row for masters matched only by the *other* branch; best-match
    // must remove those spurious rows.
    let db = sitcom_db();
    let query = "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
        OPTIONAL { { ?f :livesIn :NewYorkCity . } UNION { ?f :livesIn :LosAngeles . } } }";
    // Ground truth from the oracle: both friends have a location, no NULLs.
    let truth = engine_rows(&db, EngineKind::Reference, query);
    assert_eq!(engine_rows(&db, EngineKind::Lbr, query), truth);
    assert!(engine_rows(&db, EngineKind::Lbr, query)
        .iter()
        .all(|r| r.iter().all(|c| c.is_some())));
}

#[test]
fn filters() {
    let db = sitcom_db();
    // Filter inside the master.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f . FILTER(?f != :Larry)
           OPTIONAL { ?f :actedIn ?s . } }",
    );
    // Filter inside the OPTIONAL.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :actedIn ?s . FILTER(?s = :Seinfeld) } }",
    );
    // BOUND over an OPTIONAL result (global filter).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :actedIn ?s . ?s :location :NewYorkCity . }
           FILTER( BOUND(?s) ) }",
    );
}

#[test]
fn cartesian_products() {
    let db = sitcom_db();
    // Top-level cross product of two connected pieces.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { { :Jerry :hasFriend ?f . } { ?s :location :NewYorkCity . } }",
    );
    // Cross-product OPTIONAL (disconnected slave).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?s :location :D.C. . } }",
    );
}

#[test]
fn projection_and_bag_semantics() {
    let db = sitcom_db();
    let query = "PREFIX : <> SELECT ?f WHERE { :Jerry :hasFriend ?f . ?f :actedIn ?s . }";
    // Julia acted in 4 sitcoms, Larry in 1 → 5 rows under bag semantics.
    let rows = engine_rows(&db, EngineKind::Lbr, query);
    assert_eq!(rows.len(), 5);
    assert_eq!(rows, engine_rows(&db, EngineKind::Reference, query));
}

#[test]
fn non_well_designed_matches_sql_semantics() {
    // The Appendix B/C class: LBR (with the GoSN transformation) follows
    // the SQL null-intolerant semantics, like Virtuoso/MonetDB.
    let db = Database::from_triples(vec![
        t("Jerry", "hasFriend", "Julia"),
        t("Jerry", "hasFriend", "Larry"),
        t("Julia", "actedIn", "Seinfeld"),
        t("Friends", "location", "NewYorkCity"),
        t("Seinfeld", "location", "NewYorkCity"),
    ]);
    let query = "PREFIX : <> SELECT * WHERE {
        { :Jerry :hasFriend ?f . OPTIONAL { ?f :actedIn ?s . } }
        { ?s :location :NewYorkCity . } }";
    // The oracle under SQL semantics, through the same Engine seam.
    let q = parse_query(query).unwrap();
    let sql_oracle = db.engine_with(
        EngineKind::Reference,
        &EngineOptions {
            semantics: Semantics::NullIntolerant,
            ..EngineOptions::default()
        },
    );
    let mut truth_sql: Vec<Vec<Option<String>>> = sql_oracle
        .execute(&q)
        .unwrap()
        .decode(db.dict())
        .into_iter()
        .map(|r| r.into_iter().map(|t| t.map(|x| x.to_string())).collect())
        .collect();
    truth_sql.sort();
    assert_eq!(engine_rows(&db, EngineKind::Lbr, query), truth_sql);
    // And it genuinely differs from the pure-SPARQL semantics here.
    assert_ne!(truth_sql, engine_rows(&db, EngineKind::Reference, query));
}

#[test]
fn filter_on_pattern_absent_variable() {
    // A FILTER over a variable that occurs nowhere in the pattern: the
    // variable can never be bound, so comparisons collapse to `false`
    // (SPARQL error semantics) and `!BOUND` is `true`. The engine used to
    // silently discard such filters.
    let db = sitcom_db();
    // Constant-false in the master: every row is dropped.
    let drop_all = "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
        FILTER(?nosuch = :Julia) }";
    assert_all_agree(&db, drop_all);
    assert!(
        db.execute(drop_all).unwrap().is_empty(),
        "FILTER over an unbound variable must drop every row"
    );
    // Constant-true (!BOUND of a never-bound variable): keeps every row.
    let keep_all = "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
        FILTER(!BOUND(?nosuch)) }";
    assert_all_agree(&db, keep_all);
    assert_eq!(db.execute(keep_all).unwrap().len(), 2);
    // Constant-false inside an OPTIONAL: the slave never matches, so every
    // row keeps its master bindings with NULLs for the slave.
    let null_slave = "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
        OPTIONAL { ?f :actedIn ?s . FILTER(?nosuch = :Julia) } }";
    assert_all_agree(&db, null_slave);
    let out = db.execute(null_slave).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.rows_with_nulls(), 2);
}

#[test]
fn filter_scoped_to_its_group() {
    // ?c is bound only by the master pattern: inside the OPTIONAL group's
    // scope it is unbound, so the filter is constant-false there and the
    // OPTIONAL never matches (the oracle's compositional semantics). The
    // filter must neither be discarded nor read the master's binding.
    let db = sitcom_db();
    let query = "PREFIX : <> SELECT * WHERE { ?f :livesIn ?c .
        OPTIONAL { ?f :actedIn ?s . FILTER(?c = :NewYorkCity) } }";
    assert_all_agree(&db, query);
    let rows = engine_rows(&db, EngineKind::Lbr, query);
    assert!(
        rows.iter().all(|r| r[2].is_none()),
        "the out-of-scope filter nullifies the OPTIONAL for every row"
    );
}

#[test]
fn nested_optional_with_filters() {
    let db = sitcom_db();
    // Filter inside the innermost OPTIONAL of a nested chain.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :actedIn ?s .
             OPTIONAL { ?s :location ?l . FILTER(?l != :LosAngeles) } } }",
    );
    // Filter on the master of a nested-OPTIONAL chain.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f . FILTER(?f != :Larry)
           OPTIONAL { ?f :actedIn ?s . OPTIONAL { ?s :location ?l . } } }",
    );
    // Pattern-absent filter variable in the innermost OPTIONAL.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :actedIn ?s .
             OPTIONAL { ?s :location ?l . FILTER(?nosuch = 1) } } }",
    );
}

#[test]
fn rule3_minimum_union_over_full_schema_before_projection() {
    // P1 ⟕ (P2 ∪ P3) with a projection that erases the column (?y)
    // distinguishing a q-branch row from a p-branch row. The q-branch row
    // projects to (a, NULL), which *looks* subsumed by the p-branch's
    // (a, c1) — but rule (3)'s minimum union is defined over the full
    // branch schemas, where {s,o,x} and {s,o,y} rows are incomparable.
    // Best-matching after projection would silently lose the row.
    let db = Database::from_triples(vec![
        t("a", "m", "o1"),
        t("a", "p", "c1"),
        t("a", "q", "d1"),
    ]);
    let query = "PREFIX : <> SELECT ?s ?x WHERE { ?s :m ?o .
        OPTIONAL { { ?s :p ?x . } UNION { ?s :q ?y . } } }";
    assert_all_agree(&db, query);
    let rows = engine_rows(&db, EngineKind::Lbr, query);
    assert_eq!(rows.len(), 2, "both union branches contribute a row");
    assert!(
        rows.contains(&vec![Some("<a>".to_string()), None]),
        "the q-branch row survives as (a, NULL)"
    );
    // And the spurious-row case still collapses: when only one branch
    // matches, the other branch's all-NULL padding is genuinely subsumed.
    let db2 = Database::from_triples(vec![t("a", "m", "o1"), t("a", "p", "c1")]);
    assert_all_agree(&db2, query);
    assert_eq!(engine_rows(&db2, EngineKind::Lbr, query).len(), 1);
}

/// The public-API determinism guarantee: the parallel multi-way join
/// returns rows byte-identical — same order, same encoded values — to the
/// serial engine.
#[test]
fn lbr_parallel_rows_identical_in_order() {
    let db = sitcom_db();
    let queries = [
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :actedIn ?s . ?s :location :NewYorkCity . } }",
        "PREFIX : <> SELECT * WHERE { ?f :actedIn ?s . ?s :location ?where . }",
        "PREFIX : <> SELECT * WHERE { ?s ?p ?o . }",
        "PREFIX : <> SELECT * WHERE {
           { ?f :actedIn ?s . ?s :location :NewYorkCity . }
           UNION { ?f :actedIn ?s . ?s :location :LosAngeles . } }",
    ];
    for query in queries {
        let q = parse_query(query).unwrap();
        let serial = db
            .engine_with(
                EngineKind::Lbr,
                &EngineOptions {
                    threads: 1,
                    ..EngineOptions::default()
                },
            )
            .execute(&q)
            .unwrap();
        for threads in [2, 8] {
            let parallel = db
                .engine_with(
                    EngineKind::Lbr,
                    &EngineOptions {
                        threads,
                        ..EngineOptions::default()
                    },
                )
                .execute(&q)
                .unwrap();
            assert_eq!(parallel.vars, serial.vars);
            assert_eq!(
                parallel.rows, serial.rows,
                "threads={threads} changes row order or content on: {query}"
            );
        }
    }
}

/// For queries whose ORDER BY keys determine the row sequence up to
/// identical rows, every engine × thread count must return the exact same
/// decoded sequence (no sorting before comparison).
#[track_caller]
fn assert_all_agree_in_order(db: &Database, query: &str) {
    let q = parse_query(query).unwrap();
    let truth = db
        .engine_of(EngineKind::Reference)
        .execute(&q)
        .unwrap()
        .render(db.dict());
    for kind in EngineKind::all() {
        for threads in THREADS_AXIS {
            let rows = db
                .engine_with(
                    kind,
                    &EngineOptions {
                        threads,
                        ..EngineOptions::default()
                    },
                )
                .execute(&q)
                .unwrap()
                .render(db.dict());
            assert_eq!(
                rows, truth,
                "{kind} (threads={threads}) sequence deviates on: {query}"
            );
        }
    }
}

#[test]
fn distinct_queries_agree() {
    let db = sitcom_db();
    // Julia acted in 4 sitcoms → SELECT ?f has duplicates; DISTINCT
    // collapses them identically everywhere.
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT DISTINCT ?f WHERE { :Jerry :hasFriend ?f . ?f :actedIn ?s . }",
    );
    let with = db
        .execute("PREFIX : <> SELECT ?f WHERE { :Jerry :hasFriend ?f . ?f :actedIn ?s . }")
        .unwrap();
    let without = db
        .execute("PREFIX : <> SELECT DISTINCT ?f WHERE { :Jerry :hasFriend ?f . ?f :actedIn ?s . }")
        .unwrap();
    assert_eq!(with.len(), 5);
    assert_eq!(without.len(), 2);
    // REDUCED behaves like DISTINCT here (permitted cardinality).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT REDUCED ?f WHERE { :Jerry :hasFriend ?f . ?f :actedIn ?s . }",
    );
    // DISTINCT over a row with NULLs (OPTIONAL).
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT DISTINCT ?f ?l WHERE { :Jerry :hasFriend ?f .
           OPTIONAL { ?f :location ?l . } }",
    );
}

/// Regression: a term living in BOTH the predicate dictionary and the
/// subject/object dictionary gets unrelated encoded IDs; a DISTINCT
/// column that mixes the two spaces across UNION branches must still
/// dedup by *term*, not by encoded ID.
#[test]
fn distinct_dedups_across_predicate_and_so_dimensions() {
    let db = Database::from_triples(vec![t("a", "p", "b"), t("p", "q", "c")]);
    let query = "SELECT DISTINCT ?x WHERE { { <a> ?x <b> . } UNION { ?x <q> <c> . } }";
    assert_all_agree(&db, query);
    let out = db.execute(query).unwrap();
    assert_eq!(
        out.render(db.dict()),
        vec!["<p>".to_string()],
        "one term, one row — regardless of which dictionary dimension bound it"
    );
}

#[test]
fn ordered_queries_agree_in_sequence() {
    let db = sitcom_db();
    // The ORDER BY keys cover every projected column, so ties are
    // identical rows and the sequence is engine-independent.
    assert_all_agree_in_order(
        &db,
        "PREFIX : <> SELECT ?f ?s WHERE { :Jerry :hasFriend ?f . ?f :actedIn ?s . }
           ORDER BY ?f DESC(?s)",
    );
    // Unbound OPTIONAL cells sort first ascending / last descending.
    assert_all_agree_in_order(
        &db,
        "PREFIX : <> SELECT * WHERE { :Jerry :hasFriend ?f . OPTIONAL { ?f :location ?l . } }
           ORDER BY ?l ?f",
    );
    // ORDER + LIMIT + OFFSET: a deterministic slice.
    assert_all_agree_in_order(
        &db,
        "PREFIX : <> SELECT ?f ?s WHERE { ?f :actedIn ?s . } ORDER BY ?f ?s LIMIT 3 OFFSET 1",
    );
    // ORDER BY a non-projected variable (extends the execution schema,
    // then the seam drops it) — plus DISTINCT on the projected column.
    assert_all_agree_in_order(
        &db,
        "PREFIX : <> SELECT ?s WHERE { ?f :actedIn ?s . ?s :location ?w . } ORDER BY ?w ?s",
    );
}

#[test]
fn ask_queries_agree() {
    let db = sitcom_db();
    let cases = [
        ("PREFIX : <> ASK { :Jerry :hasFriend ?f . }", true),
        ("PREFIX : <> ASK { :Larry :hasFriend ?f . }", false),
        (
            "PREFIX : <> ASK { :Jerry :hasFriend ?f . ?f :actedIn ?s .
               ?s :location :NewYorkCity . }",
            true,
        ),
        // Modifiers apply before the emptiness test.
        ("PREFIX : <> ASK { :Jerry :hasFriend ?f . } OFFSET 1", true),
        ("PREFIX : <> ASK { :Jerry :hasFriend ?f . } OFFSET 2", false),
        ("PREFIX : <> ASK { :Jerry :hasFriend ?f . } LIMIT 0", false),
    ];
    for (query, expect) in cases {
        let q = parse_query(query).unwrap();
        for kind in EngineKind::all() {
            for threads in THREADS_AXIS {
                let out = db
                    .engine_with(
                        kind,
                        &EngineOptions {
                            threads,
                            ..EngineOptions::default()
                        },
                    )
                    .execute(&q)
                    .unwrap();
                assert_eq!(
                    out.boolean(),
                    Some(expect),
                    "{kind} (threads={threads}) deviates on: {query}"
                );
            }
        }
        assert_eq!(db.ask(query).unwrap(), expect, "{query}");
    }
}

/// The acceptance criterion for the LIMIT pushdown: at `threads = 1` the
/// multi-way join enumerates no more seeds than needed, and boundedly
/// more at N threads — while returning exactly the rows of the unbounded
/// run's prefix.
#[test]
fn limit_pushdown_terminates_early() {
    let triples: Vec<Triple> = (0..200).map(|i| t(&format!("s{i}"), "p", "o")).collect();
    let db = Database::from_triples(triples);
    let full = db.execute("SELECT * WHERE { ?s <p> <o> . }").unwrap();
    assert_eq!(full.len(), 200);
    assert_eq!(full.stats.join_seeds, 200);

    let q = parse_query("SELECT ?s WHERE { ?s <p> <o> . } LIMIT 10 OFFSET 5").unwrap();
    let serial = db
        .engine_with(
            EngineKind::Lbr,
            &EngineOptions {
                threads: 1,
                ..EngineOptions::default()
            },
        )
        .execute(&q)
        .unwrap();
    assert_eq!(serial.len(), 10);
    assert_eq!(
        serial.stats.join_seeds, 15,
        "threads=1 stops exactly at offset+limit seeds"
    );
    for threads in [2, 8] {
        let parallel = db
            .engine_with(
                EngineKind::Lbr,
                &EngineOptions {
                    threads,
                    ..EngineOptions::default()
                },
            )
            .execute(&q)
            .unwrap();
        assert_eq!(parallel.rows, serial.rows, "threads={threads}");
        assert!(
            parallel.stats.join_seeds <= 200,
            "bounded overshoot at threads={threads}"
        );
    }
    // ASK short-circuits to a single seed (exact only at threads = 1;
    // N workers may claim a couple of chunks before the counter gates).
    let ask = db
        .engine_with(
            EngineKind::Lbr,
            &EngineOptions {
                threads: 1,
                ..EngineOptions::default()
            },
        )
        .execute(&parse_query("ASK { ?s <p> <o> . }").unwrap())
        .unwrap();
    assert_eq!(ask.boolean(), Some(true));
    assert_eq!(ask.stats.join_seeds, 1, "existence needs one seed");
    // ORDER BY disables the pushdown: every seed must be enumerated.
    let ordered = db
        .execute("SELECT * WHERE { ?s <p> <o> . } ORDER BY ?s LIMIT 10")
        .unwrap();
    assert_eq!(ordered.len(), 10);
    assert_eq!(ordered.stats.join_seeds, 200);
}

/// Satellite bugfix: `SELECT ?x` where `?x` never occurs in the WHERE
/// pattern must yield an all-unbound column on every engine — never an
/// error or a panic (SPARQL projection semantics).
#[test]
fn projection_of_pattern_absent_variable_is_all_unbound() {
    let db = sitcom_db();
    let query = "PREFIX : <> SELECT ?f ?ghost WHERE { :Jerry :hasFriend ?f . }";
    assert_all_agree(&db, query);
    let out = db.execute(query).unwrap();
    assert_eq!(out.vars, vec!["f", "ghost"]);
    assert_eq!(out.len(), 2);
    assert!(out.rows.iter().all(|r| r[0].is_some() && r[1].is_none()));
    // Pure-ghost projection: one all-NULL column per solution.
    let query = "PREFIX : <> SELECT ?ghost WHERE { :Jerry :hasFriend ?f . }";
    assert_all_agree(&db, query);
    assert_eq!(db.execute(query).unwrap().len(), 2);
    // Ghost columns interact correctly with the modifiers (ORDER BY a
    // ghost is a constant key; DISTINCT collapses the all-NULL rows).
    let query = "PREFIX : <> SELECT DISTINCT ?ghost WHERE { :Jerry :hasFriend ?f . }
        ORDER BY ?ghost";
    assert_all_agree(&db, query);
    assert_eq!(db.execute(query).unwrap().len(), 1);
}

#[test]
fn deep_nesting_fig_2_1b_shape_with_data() {
    let db = Database::from_triples(vec![
        t("x1", "pa", "y1"),
        t("y1", "pb", "w1"),
        t("x1", "pc", "z1"),
        t("z1", "pd", "v1"),
        t("x1", "pe", "u1"),
        t("u1", "pf", "q1"),
        t("x2", "pa", "y2"),
        t("x2", "pc", "z2"),
        t("x3", "pa", "y3"),
        t("y3", "pb", "w3"),
        t("x3", "pc", "z3"),
        t("z3", "pd", "v3"),
    ]);
    assert_all_agree(
        &db,
        "PREFIX : <> SELECT * WHERE {
           { ?x :pa ?y . OPTIONAL { ?y :pb ?w . } }
           { ?x :pc ?z . OPTIONAL { ?z :pd ?v . } }
           OPTIONAL { ?x :pe ?u . OPTIONAL { ?u :pf ?q . } } }",
    );
}
