//! Property-based equivalence for the §5.2 extensions: random
//! well-designed queries with UNIONs and FILTERs must agree with the
//! SPARQL-algebra oracle after the UNION-normal-form rewrite. Rule (3)
//! branches (UNION inside an OPTIONAL) introduce spurious rows that the
//! cross-branch best-match must remove — the property that guards it.

use lbr::baseline::{evaluate_reference, Semantics};
use lbr::sparql::algebra::{Expr, GraphPattern, Query, TermPattern, TriplePattern};
use lbr::{Database, Term, Triple};
use proptest::prelude::*;

const ENTITIES: [&str; 8] = ["e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"];
const PREDICATES: [&str; 4] = ["p0", "p1", "p2", "p3"];

fn arb_graph() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0usize..8, 0usize..4, 0usize..8), 1..40).prop_map(|ts| {
        ts.into_iter()
            .map(|(s, p, o)| {
                Triple::new(
                    Term::iri(ENTITIES[s]),
                    Term::iri(PREDICATES[p]),
                    Term::iri(ENTITIES[o]),
                )
            })
            .collect()
    })
}

fn tp(s: &str, p: usize, o: &str) -> TriplePattern {
    let f = |x: &str| {
        if let Some(v) = x.strip_prefix('?') {
            TermPattern::Var(v.to_string())
        } else {
            TermPattern::Const(Term::iri(x))
        }
    };
    TriplePattern::new(f(s), TermPattern::Const(Term::iri(PREDICATES[p])), f(o))
}

/// A small family of UNION/FILTER query shapes, all well-designed, indexed
/// by a seed-controlled selector so proptest explores and shrinks them.
fn shaped_query(kind: u8, p: [usize; 4], e: usize) -> GraphPattern {
    let ent = ENTITIES[e];
    match kind % 6 {
        // (A ∪ B) ⋈ C — rule (1).
        0 => GraphPattern::join(
            GraphPattern::union(
                GraphPattern::Bgp(vec![tp("?x", p[0], "?y")]),
                GraphPattern::Bgp(vec![tp("?x", p[1], "?y")]),
            ),
            GraphPattern::Bgp(vec![tp("?y", p[2], "?z")]),
        ),
        // (A ∪ B) ⟕ C — rule (2).
        1 => GraphPattern::left_join(
            GraphPattern::union(
                GraphPattern::Bgp(vec![tp("?x", p[0], "?y")]),
                GraphPattern::Bgp(vec![tp("?x", p[1], "?y")]),
            ),
            GraphPattern::Bgp(vec![tp("?y", p[2], "?z")]),
        ),
        // A ⟕ (B ∪ C) — rule (3), spurious-row territory.
        2 => GraphPattern::left_join(
            GraphPattern::Bgp(vec![tp("?x", p[0], "?y")]),
            GraphPattern::union(
                GraphPattern::Bgp(vec![tp("?y", p[1], "?z")]),
                GraphPattern::Bgp(vec![tp("?y", p[2], "?z")]),
            ),
        ),
        // Filter on the master of an OPTIONAL — rule (4).
        3 => GraphPattern::filter(
            GraphPattern::left_join(
                GraphPattern::Bgp(vec![tp("?x", p[0], "?y")]),
                GraphPattern::Bgp(vec![tp("?y", p[1], "?z")]),
            ),
            Expr::Ne(
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Const(Term::iri(ent))),
            ),
        ),
        // BOUND filter over the OPTIONAL value (global / FaN path).
        4 => GraphPattern::filter(
            GraphPattern::left_join(
                GraphPattern::Bgp(vec![tp("?x", p[0], "?y")]),
                GraphPattern::Bgp(vec![tp("?y", p[1], "?z")]),
            ),
            Expr::Bound("z".into()),
        ),
        // Filter inside the OPTIONAL + UNION of masters — rules (4)+(5).
        _ => GraphPattern::left_join(
            GraphPattern::union(
                GraphPattern::Bgp(vec![tp("?x", p[0], "?y")]),
                GraphPattern::Bgp(vec![tp("?x", p[1], "?y")]),
            ),
            GraphPattern::filter(
                GraphPattern::Bgp(vec![tp("?y", p[2], "?z")]),
                Expr::Ne(
                    Box::new(Expr::Var("z".into())),
                    Box::new(Expr::Const(Term::iri(ent))),
                ),
            ),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn union_filter_queries_match_oracle(
        triples in arb_graph(),
        kind in 0u8..6,
        p in [0usize..4, 0usize..4, 0usize..4, 0usize..4],
        e in 0usize..8,
    ) {
        let db = Database::from_triples(triples);
        let pattern = shaped_query(kind, p, e);
        let query = Query::select_all(pattern);
        let proj = query.projected_vars();

        let truth =
            evaluate_reference(&query, db.dict(), db.store(), Semantics::Sparql).unwrap();
        let out = db.execute_query(&query).unwrap();

        let cols_t: Vec<usize> =
            proj.iter().map(|v| truth.vars.iter().position(|x| x == v).unwrap()).collect();
        let mut want: Vec<Vec<Option<u32>>> = truth
            .rows
            .iter()
            .map(|r| cols_t.iter().map(|&c| r[c].map(|b| b.id)).collect())
            .collect();
        let cols_o: Vec<usize> =
            proj.iter().map(|v| out.vars.iter().position(|x| x == v).unwrap()).collect();
        let mut got: Vec<Vec<Option<u32>>> = out
            .rows
            .iter()
            .map(|r| cols_o.iter().map(|&c| r[c].map(|b| b.id)).collect())
            .collect();
        want.sort();
        got.sort();
        // Rule (3) makes the rewrite a minimum-union, not a bag equality:
        // compare as sets after best-match semantics on the oracle side too.
        if kind % 6 == 2 {
            want.dedup();
            got.dedup();
        }
        prop_assert_eq!(got, want, "disagreement on {}", query);
    }
}
