//! The two queries of the paper's introduction (§1), run verbatim.

use lbr::{Database, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// Q1: all actors with name and address; email/telephone only when listed.
#[test]
fn q1_actor_contact_info() {
    let mut triples = Vec::new();
    for i in 0..6 {
        let a = format!("actor{i}");
        triples.push(t(&a, "name", &format!("Name{i}")));
        triples.push(t(&a, "address", &format!("Addr{i}")));
        // Only actors 0–2 have both email and telephone; 3 has email only.
        if i <= 3 {
            triples.push(t(&a, "email", &format!("e{i}@x")));
        }
        if i <= 2 {
            triples.push(t(&a, "telephone", &format!("+{i}")));
        }
    }
    let db = Database::from_triples(triples);
    let out = db
        .execute(
            "PREFIX : <> SELECT ?actor ?name ?addr ?email ?tele WHERE {
               ?actor :name ?name .
               ?actor :address ?addr .
               OPTIONAL { ?actor :email ?email . ?actor :telephone ?tele . } }",
        )
        .unwrap();
    assert_eq!(out.vars, vec!["actor", "name", "addr", "email", "tele"]);
    assert_eq!(out.len(), 6, "every actor appears");
    // Actors 0–2 fully bound; 3–5 have NULL email AND tele (the OPTIONAL
    // block matches as a unit — actor3's lone email must not leak).
    assert_eq!(out.rows_with_nulls(), 3);
    for row in out.decode(db.dict()) {
        let actor = row[0].as_ref().unwrap().lexical_form().to_string();
        let idx: usize = actor.strip_prefix("actor").unwrap().parse().unwrap();
        if idx <= 2 {
            assert!(
                row[3].is_some() && row[4].is_some(),
                "{actor} should be bound"
            );
        } else {
            assert!(
                row[3].is_none() && row[4].is_none(),
                "{actor}: partial OPTIONAL match must nullify the whole block"
            );
        }
    }
}

/// Q2: Jerry's friends with their New-York-City sitcoms — the running
/// example, with the exact expected rows of §1.
#[test]
fn q2_friends_and_sitcoms() {
    let db = Database::from_triples(vec![
        t("Julia", "actedIn", "Seinfeld"),
        t("Julia", "actedIn", "Veep"),
        t("Julia", "actedIn", "NewAdvOldChristine"),
        t("Julia", "actedIn", "CurbYourEnthu"),
        t("CurbYourEnthu", "location", "LosAngeles"),
        t("Larry", "actedIn", "CurbYourEnthu"),
        t("Jerry", "hasFriend", "Julia"),
        t("Jerry", "hasFriend", "Larry"),
        t("Seinfeld", "location", "NewYorkCity"),
        t("Veep", "location", "D.C."),
        t("NewAdvOldChristine", "location", "Jersey"),
    ]);
    let out = db
        .execute(
            "PREFIX : <> SELECT ?friend ?sitcom WHERE {
               :Jerry :hasFriend ?friend .
               OPTIONAL { ?friend :actedIn ?sitcom . ?sitcom :location :NewYorkCity . } }",
        )
        .unwrap();
    let mut rows = out.render(db.dict());
    rows.sort();
    assert_eq!(
        rows,
        vec![
            "<Julia>\t<Seinfeld>".to_string(),
            "<Larry>\tNULL".to_string()
        ]
    );
    // §1's selectivity story: tp2/tp3 are low-selectivity, but pruning cuts
    // them down before the join — and no repair operators were needed.
    assert!(!out.stats.nb_required);
    assert_eq!(out.stats.nullification_fired, 0);
    assert!(out.stats.triples_after_pruning < out.stats.initial_triples);
}
