//! End-to-end tests of the `(?s ?p ?o)` extension (the paper lists this
//! shape as "currently under development"): the LBR engine must agree with
//! the SPARQL-algebra oracle when all-variable patterns appear alone, in
//! joins, and inside OPTIONALs.

use lbr::baseline::{evaluate_reference, Semantics};
use lbr::{parse_query, Database, Term, Triple};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

fn db() -> Database {
    Database::from_triples(vec![
        t("a", "p1", "b"),
        t("a", "p2", "c"),
        t("b", "p1", "c"),
        t("c", "p3", "a"),
        t("d", "p2", "a"),
        t("b", "p3", "d"),
    ])
}

#[track_caller]
fn agree(db: &Database, query: &str) -> usize {
    let q = parse_query(query).unwrap();
    let out = db.execute_query(&q).unwrap();
    let truth = evaluate_reference(&q, db.dict(), db.store(), Semantics::Sparql).unwrap();
    let proj = q.projected_vars();
    let to_rows = |rows: &Vec<Vec<Option<lbr::core::Binding>>>, vars: &Vec<String>| {
        let cols: Vec<usize> = proj
            .iter()
            .map(|v| vars.iter().position(|x| x == v).unwrap())
            .collect();
        let mut out: Vec<Vec<Option<String>>> = rows
            .iter()
            .map(|r| {
                cols.iter()
                    .map(|&c| r[c].map(|b| b.decode(db.dict()).to_string()))
                    .collect()
            })
            .collect();
        out.sort();
        out
    };
    let lbr_rows = to_rows(&out.rows, &out.vars);
    let oracle_rows = to_rows(&truth.rows, &truth.vars);
    assert_eq!(lbr_rows, oracle_rows, "disagreement on {query}");
    lbr_rows.len()
}

#[test]
fn bare_spo_scans_everything() {
    let n = agree(&db(), "SELECT * WHERE { ?s ?p ?o . }");
    assert_eq!(n, 6);
}

#[test]
fn spo_joined_with_fixed_pattern() {
    // All facts about entities that ?x points to via p1.
    let n = agree(
        &db(),
        "PREFIX : <> SELECT * WHERE { ?x :p1 ?y . ?y ?p ?z . }",
    );
    assert!(n > 0);
}

#[test]
fn spo_inside_optional() {
    // Describe each p1-edge target if it has any outgoing edge.
    let n = agree(
        &db(),
        "PREFIX : <> SELECT * WHERE { ?x :p1 ?y . OPTIONAL { ?y ?p ?z . } }",
    );
    assert!(n >= 2);
}

#[test]
fn spo_with_predicate_binding_projected() {
    // The predicate variable binds per matched predicate slice.
    let q = parse_query("PREFIX : <> SELECT ?p WHERE { :a ?p ?o . }").unwrap();
    let db = db();
    let out = db.execute_query(&q).unwrap();
    let mut preds: Vec<String> = out
        .rows
        .iter()
        .map(|r| r[0].unwrap().decode(db.dict()).to_string())
        .collect();
    preds.sort();
    assert_eq!(preds, vec!["<p1>".to_string(), "<p2>".to_string()]);
}

#[test]
fn spo_pruned_by_selective_master() {
    // The all-var TP is a slave; the selective master restricts ?y so the
    // Three-variant TP gets actively pruned at init.
    let db = db();
    let out = db
        .execute("PREFIX : <> SELECT * WHERE { :a :p1 ?y . OPTIONAL { ?y ?p ?z . } }")
        .unwrap();
    // ?y = b; b has two outgoing edges (p1 c, p3 d).
    assert_eq!(out.len(), 2);
    agree(
        &db,
        "PREFIX : <> SELECT * WHERE { :a :p1 ?y . OPTIONAL { ?y ?p ?z . } }",
    );
}
