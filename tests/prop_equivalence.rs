//! Property-based equivalence: on random graphs and random *well-designed*
//! BGP-OPT queries, the LBR engine must agree exactly (as a bag of rows)
//! with the nested-loop SPARQL-algebra oracle and with the pairwise
//! baseline. Random queries cover nested/sibling OPTIONALs, inner joins,
//! acyclic and cyclic shapes — the whole Figure 3.1 well-designed family.

use lbr::baseline::{evaluate_reference, EngineOptions, JoinOrder, PairwiseEngine, Semantics};
use lbr::sparql::algebra::{
    Dedup, GraphPattern, Modifiers, OrderKey, Query, TermPattern, TriplePattern,
};
use lbr::{Database, EngineKind, Term, Triple};
use proptest::prelude::*;
use std::collections::HashMap;

const ENTITIES: [&str; 10] = ["e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];
const PREDICATES: [&str; 5] = ["p0", "p1", "p2", "p3", "p4"];

fn arb_graph() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0usize..10, 0usize..5, 0usize..10), 1..60).prop_map(|ts| {
        ts.into_iter()
            .map(|(s, p, o)| {
                Triple::new(
                    Term::iri(ENTITIES[s]),
                    Term::iri(PREDICATES[p]),
                    Term::iri(ENTITIES[o]),
                )
            })
            .collect()
    })
}

/// Recipe for a deterministic-but-random well-designed pattern: a shape
/// tree plus per-node random seeds.
#[derive(Debug, Clone)]
enum Shape {
    Bgp { n_tps: usize, seed: u64 },
    Join(Box<Shape>, Box<Shape>),
    LeftJoin(Box<Shape>, Box<Shape>),
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = (1usize..4, any::<u64>()).prop_map(|(n_tps, seed)| Shape::Bgp { n_tps, seed });
    leaf.prop_recursive(3, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Shape::Join(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Shape::LeftJoin(Box::new(l), Box::new(r))),
        ]
    })
}

/// Splitmix-style deterministic pseudo-random stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

struct Gen {
    fresh: usize,
}

impl Gen {
    /// Builds a well-designed pattern: the right side of every LeftJoin may
    /// reuse only variables visible from its master side; fresh variables
    /// are globally unique, so nothing in a slave ever leaks outside
    /// without going through its master — WD by construction.
    fn build(&mut self, shape: &Shape, visible: &mut Vec<String>) -> GraphPattern {
        match shape {
            Shape::Bgp { n_tps, seed } => {
                let mut rng = Rng(*seed);
                let mut tps = Vec::new();
                for _ in 0..*n_tps {
                    tps.push(self.tp(&mut rng, visible));
                }
                GraphPattern::Bgp(tps)
            }
            Shape::Join(l, r) => {
                let lp = self.build(l, visible);
                let rp = self.build(r, visible);
                GraphPattern::join(lp, rp)
            }
            Shape::LeftJoin(l, r) => {
                let lp = self.build(l, visible);
                // The slave sees the master's vars but its fresh vars stay
                // local (removed from visibility afterwards).
                let mut slave_visible = visible.clone();
                let before = slave_visible.len();
                let rp = self.build(r, &mut slave_visible);
                // Vars the master introduced sideways don't exist; only
                // keep what was visible before.
                slave_visible.truncate(before);
                GraphPattern::left_join(lp, rp)
            }
        }
    }

    fn var(&mut self, rng: &mut Rng, visible: &mut Vec<String>) -> String {
        if !visible.is_empty() && rng.chance(65) {
            visible[(rng.next() % visible.len() as u64) as usize].clone()
        } else {
            let v = format!("v{}", self.fresh);
            self.fresh += 1;
            visible.push(v.clone());
            v
        }
    }

    fn tp(&mut self, rng: &mut Rng, visible: &mut Vec<String>) -> TriplePattern {
        // Anchor: connect to an existing variable when possible.
        let s: TermPattern = if rng.chance(80) || visible.is_empty() {
            if visible.is_empty() || rng.chance(75) {
                TermPattern::Var(self.var(rng, visible))
            } else {
                TermPattern::Const(Term::iri(*rng.pick(&ENTITIES)))
            }
        } else {
            TermPattern::Const(Term::iri(*rng.pick(&ENTITIES)))
        };
        let p = TermPattern::Const(Term::iri(*rng.pick(&PREDICATES)));
        let o: TermPattern = if rng.chance(70) {
            TermPattern::Var(self.var(rng, visible))
        } else {
            TermPattern::Const(Term::iri(*rng.pick(&ENTITIES)))
        };
        TriplePattern::new(s, p, o)
    }
}

/// True when every supernode's TPs form one var-connected component on
/// their own (the paper's no-Cartesian-product premise at SN granularity).
fn supernodes_internally_connected(pattern: &GraphPattern) -> bool {
    let analyzed = lbr::sparql::classify::analyze(pattern).unwrap();
    let gosn = &analyzed.gosn;
    (0..gosn.n_supernodes()).all(|sn| {
        let tps = gosn.tps_of_sn(sn);
        if tps.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; tps.len()];
        seen[0] = true;
        let mut frontier = vec![0usize];
        let mut count = 1;
        while let Some(i) = frontier.pop() {
            for j in 0..tps.len() {
                if !seen[j]
                    && gosn
                        .tp(tps[i])
                        .vars()
                        .iter()
                        .any(|v| gosn.tp(tps[j]).has_var(v))
                {
                    seen[j] = true;
                    count += 1;
                    frontier.push(j);
                }
            }
        }
        count == tps.len()
    })
}

fn rows_sorted(
    rel_rows: Vec<Vec<Option<lbr::core::Binding>>>,
    vars: &[String],
    order: &[String],
    dict: &lbr::Dictionary,
) -> Vec<Vec<Option<String>>> {
    let cols: Vec<Option<usize>> = order
        .iter()
        .map(|v| vars.iter().position(|x| x == v))
        .collect();
    let mut rows: Vec<Vec<Option<String>>> = rel_rows
        .iter()
        .map(|r| {
            cols.iter()
                .map(|c| c.and_then(|i| r[i]).map(|b| b.decode(dict).to_string()))
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        max_global_rejects: 16384,
        ..ProptestConfig::default()
    })]

    #[test]
    fn lbr_matches_oracle_on_well_designed_queries(
        triples in arb_graph(),
        shape in arb_shape(),
    ) {
        let db = Database::from_triples(triples);
        let mut gen = Gen { fresh: 0 };
        let mut visible = Vec::new();
        let pattern = gen.build(&shape, &mut visible);
        prop_assume!(lbr::sparql::is_well_designed(&pattern));
        let query = Query::select_all(pattern);
        let proj = query.projected_vars();
        prop_assume!(!proj.is_empty());

        let truth_rel =
            evaluate_reference(&query, db.dict(), db.store(), Semantics::Sparql).unwrap();
        let truth = rows_sorted(truth_rel.rows, &truth_rel.vars, &proj, db.dict());

        let out = db.execute_query(&query).unwrap();
        let lbr_rows = rows_sorted(out.rows, &out.vars, &proj, db.dict());
        prop_assert_eq!(
            &lbr_rows, &truth,
            "LBR deviates on {} (stats: {:?})", query, out.stats
        );

        let pw = PairwiseEngine::new(db.store(), db.dict(), JoinOrder::Selectivity)
            .execute(&query)
            .unwrap();
        let pw_rows = rows_sorted(pw.rows, &pw.vars, &proj, db.dict());
        prop_assert_eq!(&pw_rows, &truth, "pairwise deviates on {}", query);
    }

    /// Acyclic well-designed queries must never fire nullification
    /// (Lemma 3.3) — pruning alone restores minimality. The paper's "no
    /// Cartesian products" premise also rules out supernodes whose own TPs
    /// are internally disconnected (they join only through their master's
    /// variables, which semi-joins cannot prune), so the property is
    /// asserted under that premise; the engine keeps nullification as a
    /// safety net for the excluded shapes.
    #[test]
    fn acyclic_wd_needs_no_nullification(
        triples in arb_graph(),
        shape in arb_shape(),
    ) {
        let db = Database::from_triples(triples);
        let mut gen = Gen { fresh: 0 };
        let mut visible = Vec::new();
        let pattern = gen.build(&shape, &mut visible);
        prop_assume!(lbr::sparql::is_well_designed(&pattern));
        let class = lbr::sparql::classify(&pattern).unwrap();
        prop_assume!(!class.cyclic && class.connected);
        prop_assume!(supernodes_internally_connected(&pattern));
        let query = Query::select_all(pattern);
        prop_assume!(!query.projected_vars().is_empty());
        let out = db.execute_query(&query).unwrap();
        prop_assert!(!out.stats.nb_required);
        prop_assert_eq!(out.stats.nullification_fired, 0);
    }
}

/// Decoded rows of one engine run (in the engine's output order).
fn decoded_rows(
    db: &Database,
    kind: EngineKind,
    threads: usize,
    query: &Query,
) -> Vec<Vec<Option<String>>> {
    db.engine_with(
        kind,
        &EngineOptions {
            threads,
            ..EngineOptions::default()
        },
    )
    .execute(query)
    .unwrap_or_else(|e| panic!("{kind} (threads={threads}) failed on {query}: {e}"))
    .decode(db.dict())
    .into_iter()
    .map(|r| r.into_iter().map(|t| t.map(|x| x.to_string())).collect())
    .collect()
}

fn counted(rows: &[Vec<Option<String>>]) -> HashMap<&[Option<String>], isize> {
    let mut m: HashMap<&[Option<String>], isize> = HashMap::new();
    for r in rows {
        *m.entry(r.as_slice()).or_default() += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_global_rejects: 16384,
        ..ProptestConfig::default()
    })]

    /// Random DISTINCT / ORDER BY / LIMIT / OFFSET combinations over
    /// random well-designed patterns: every `EngineKind` × threads
    /// {1, 2, 8} must match the reference oracle — exactly (sequence) when
    /// ORDER BY covers all projected columns, set-equal under DISTINCT,
    /// and prefix-of-the-full-bag (right count, right multiplicities)
    /// under un-ordered LIMIT/OFFSET where engines may legitimately pick
    /// different-but-valid slices.
    #[test]
    fn modifier_combinations_match_the_oracle(
        triples in arb_graph(),
        shape in arb_shape(),
        distinct in any::<bool>(),
        ordered in any::<bool>(),
        desc_bits in any::<u8>(),
        limit_raw in 0usize..7,
        offset in 0usize..4,
    ) {
        // The vendored proptest has no Option strategy: 0 = no LIMIT.
        let limit = limit_raw.checked_sub(1);
        let db = Database::from_triples(triples);
        let mut gen = Gen { fresh: 0 };
        let mut visible = Vec::new();
        let pattern = gen.build(&shape, &mut visible);
        prop_assume!(lbr::sparql::is_well_designed(&pattern));
        let base = Query::select_all(pattern);
        let proj = base.projected_vars();
        prop_assume!(!proj.is_empty());

        // ORDER BY all projected columns (when ordering): ties can only be
        // identical rows, so the sequence is engine-independent.
        let order_by: Vec<OrderKey> = if ordered {
            proj.iter()
                .enumerate()
                .map(|(i, v)| OrderKey {
                    var: v.clone(),
                    descending: desc_bits >> (i % 8) & 1 == 1,
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut query = base.with_modifiers(Modifiers {
            order_by,
            limit,
            offset,
        });
        if distinct {
            if let lbr::sparql::QueryForm::Select { dedup, .. } = &mut query.form {
                *dedup = Dedup::Distinct;
            }
        }

        // The full (un-sliced) reference answer, for subset checks.
        let mut unsliced = query.clone();
        unsliced.modifiers.limit = None;
        unsliced.modifiers.offset = 0;
        let full = decoded_rows(&db, EngineKind::Reference, 1, &unsliced);
        let expect_len = full.len().saturating_sub(offset).min(limit.unwrap_or(usize::MAX));
        let truth = decoded_rows(&db, EngineKind::Reference, 1, &query);
        prop_assert_eq!(truth.len(), expect_len, "oracle slice length on {}", query);

        for kind in EngineKind::all() {
            for threads in [1usize, 2, 8] {
                let rows = decoded_rows(&db, kind, threads, &query);
                if ordered {
                    // Fully-ordered: exact sequence equality.
                    prop_assert_eq!(
                        &rows, &truth,
                        "{} (threads={}) ordered sequence deviates on {}",
                        kind, threads, query
                    );
                } else {
                    prop_assert_eq!(
                        rows.len(), expect_len,
                        "{} (threads={}) row count deviates on {}",
                        kind, threads, query
                    );
                    // Every returned row (with multiplicity) comes from the
                    // full answer bag; without LIMIT/OFFSET that pins the
                    // exact bag (set under DISTINCT).
                    let have = counted(&rows);
                    let avail = counted(&full);
                    for (row, n) in have {
                        prop_assert!(
                            avail.get(row).copied().unwrap_or(0) >= n,
                            "{} (threads={}) invents row {:?} on {}",
                            kind, threads, row, query
                        );
                    }
                }
            }
        }
    }
}
