//! Property-based equivalence: on random graphs and random *well-designed*
//! BGP-OPT queries, the LBR engine must agree exactly (as a bag of rows)
//! with the nested-loop SPARQL-algebra oracle and with the pairwise
//! baseline. Random queries cover nested/sibling OPTIONALs, inner joins,
//! acyclic and cyclic shapes — the whole Figure 3.1 well-designed family.

use lbr::baseline::{evaluate_reference, JoinOrder, PairwiseEngine, Semantics};
use lbr::sparql::algebra::{GraphPattern, Query, Selection, TermPattern, TriplePattern};
use lbr::{Database, Term, Triple};
use proptest::prelude::*;

const ENTITIES: [&str; 10] = ["e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];
const PREDICATES: [&str; 5] = ["p0", "p1", "p2", "p3", "p4"];

fn arb_graph() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0usize..10, 0usize..5, 0usize..10), 1..60).prop_map(|ts| {
        ts.into_iter()
            .map(|(s, p, o)| {
                Triple::new(
                    Term::iri(ENTITIES[s]),
                    Term::iri(PREDICATES[p]),
                    Term::iri(ENTITIES[o]),
                )
            })
            .collect()
    })
}

/// Recipe for a deterministic-but-random well-designed pattern: a shape
/// tree plus per-node random seeds.
#[derive(Debug, Clone)]
enum Shape {
    Bgp { n_tps: usize, seed: u64 },
    Join(Box<Shape>, Box<Shape>),
    LeftJoin(Box<Shape>, Box<Shape>),
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = (1usize..4, any::<u64>()).prop_map(|(n_tps, seed)| Shape::Bgp { n_tps, seed });
    leaf.prop_recursive(3, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Shape::Join(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Shape::LeftJoin(Box::new(l), Box::new(r))),
        ]
    })
}

/// Splitmix-style deterministic pseudo-random stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

struct Gen {
    fresh: usize,
}

impl Gen {
    /// Builds a well-designed pattern: the right side of every LeftJoin may
    /// reuse only variables visible from its master side; fresh variables
    /// are globally unique, so nothing in a slave ever leaks outside
    /// without going through its master — WD by construction.
    fn build(&mut self, shape: &Shape, visible: &mut Vec<String>) -> GraphPattern {
        match shape {
            Shape::Bgp { n_tps, seed } => {
                let mut rng = Rng(*seed);
                let mut tps = Vec::new();
                for _ in 0..*n_tps {
                    tps.push(self.tp(&mut rng, visible));
                }
                GraphPattern::Bgp(tps)
            }
            Shape::Join(l, r) => {
                let lp = self.build(l, visible);
                let rp = self.build(r, visible);
                GraphPattern::join(lp, rp)
            }
            Shape::LeftJoin(l, r) => {
                let lp = self.build(l, visible);
                // The slave sees the master's vars but its fresh vars stay
                // local (removed from visibility afterwards).
                let mut slave_visible = visible.clone();
                let before = slave_visible.len();
                let rp = self.build(r, &mut slave_visible);
                // Vars the master introduced sideways don't exist; only
                // keep what was visible before.
                slave_visible.truncate(before);
                GraphPattern::left_join(lp, rp)
            }
        }
    }

    fn var(&mut self, rng: &mut Rng, visible: &mut Vec<String>) -> String {
        if !visible.is_empty() && rng.chance(65) {
            visible[(rng.next() % visible.len() as u64) as usize].clone()
        } else {
            let v = format!("v{}", self.fresh);
            self.fresh += 1;
            visible.push(v.clone());
            v
        }
    }

    fn tp(&mut self, rng: &mut Rng, visible: &mut Vec<String>) -> TriplePattern {
        // Anchor: connect to an existing variable when possible.
        let s: TermPattern = if rng.chance(80) || visible.is_empty() {
            if visible.is_empty() || rng.chance(75) {
                TermPattern::Var(self.var(rng, visible))
            } else {
                TermPattern::Const(Term::iri(*rng.pick(&ENTITIES)))
            }
        } else {
            TermPattern::Const(Term::iri(*rng.pick(&ENTITIES)))
        };
        let p = TermPattern::Const(Term::iri(*rng.pick(&PREDICATES)));
        let o: TermPattern = if rng.chance(70) {
            TermPattern::Var(self.var(rng, visible))
        } else {
            TermPattern::Const(Term::iri(*rng.pick(&ENTITIES)))
        };
        TriplePattern::new(s, p, o)
    }
}

/// True when every supernode's TPs form one var-connected component on
/// their own (the paper's no-Cartesian-product premise at SN granularity).
fn supernodes_internally_connected(pattern: &GraphPattern) -> bool {
    let analyzed = lbr::sparql::classify::analyze(pattern).unwrap();
    let gosn = &analyzed.gosn;
    (0..gosn.n_supernodes()).all(|sn| {
        let tps = gosn.tps_of_sn(sn);
        if tps.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; tps.len()];
        seen[0] = true;
        let mut frontier = vec![0usize];
        let mut count = 1;
        while let Some(i) = frontier.pop() {
            for j in 0..tps.len() {
                if !seen[j]
                    && gosn
                        .tp(tps[i])
                        .vars()
                        .iter()
                        .any(|v| gosn.tp(tps[j]).has_var(v))
                {
                    seen[j] = true;
                    count += 1;
                    frontier.push(j);
                }
            }
        }
        count == tps.len()
    })
}

fn rows_sorted(
    rel_rows: Vec<Vec<Option<lbr::core::Binding>>>,
    vars: &[String],
    order: &[String],
    dict: &lbr::Dictionary,
) -> Vec<Vec<Option<String>>> {
    let cols: Vec<Option<usize>> = order
        .iter()
        .map(|v| vars.iter().position(|x| x == v))
        .collect();
    let mut rows: Vec<Vec<Option<String>>> = rel_rows
        .iter()
        .map(|r| {
            cols.iter()
                .map(|c| c.and_then(|i| r[i]).map(|b| b.decode(dict).to_string()))
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        max_global_rejects: 16384,
        ..ProptestConfig::default()
    })]

    #[test]
    fn lbr_matches_oracle_on_well_designed_queries(
        triples in arb_graph(),
        shape in arb_shape(),
    ) {
        let db = Database::from_triples(triples);
        let mut gen = Gen { fresh: 0 };
        let mut visible = Vec::new();
        let pattern = gen.build(&shape, &mut visible);
        prop_assume!(lbr::sparql::is_well_designed(&pattern));
        let query = Query { select: Selection::All, pattern };
        let proj = query.projected_vars();
        prop_assume!(!proj.is_empty());

        let truth_rel =
            evaluate_reference(&query, db.dict(), db.store(), Semantics::Sparql).unwrap();
        let truth = rows_sorted(truth_rel.rows, &truth_rel.vars, &proj, db.dict());

        let out = db.execute_query(&query).unwrap();
        let lbr_rows = rows_sorted(out.rows, &out.vars, &proj, db.dict());
        prop_assert_eq!(
            &lbr_rows, &truth,
            "LBR deviates on {} (stats: {:?})", query, out.stats
        );

        let pw = PairwiseEngine::new(db.store(), db.dict(), JoinOrder::Selectivity)
            .execute(&query)
            .unwrap();
        let pw_rows = rows_sorted(pw.rows, &pw.vars, &proj, db.dict());
        prop_assert_eq!(&pw_rows, &truth, "pairwise deviates on {}", query);
    }

    /// Acyclic well-designed queries must never fire nullification
    /// (Lemma 3.3) — pruning alone restores minimality. The paper's "no
    /// Cartesian products" premise also rules out supernodes whose own TPs
    /// are internally disconnected (they join only through their master's
    /// variables, which semi-joins cannot prune), so the property is
    /// asserted under that premise; the engine keeps nullification as a
    /// safety net for the excluded shapes.
    #[test]
    fn acyclic_wd_needs_no_nullification(
        triples in arb_graph(),
        shape in arb_shape(),
    ) {
        let db = Database::from_triples(triples);
        let mut gen = Gen { fresh: 0 };
        let mut visible = Vec::new();
        let pattern = gen.build(&shape, &mut visible);
        prop_assume!(lbr::sparql::is_well_designed(&pattern));
        let class = lbr::sparql::classify(&pattern).unwrap();
        prop_assume!(!class.cyclic && class.connected);
        prop_assume!(supernodes_internally_connected(&pattern));
        let query = Query { select: Selection::All, pattern };
        prop_assume!(!query.projected_vars().is_empty());
        let out = db.execute_query(&query).unwrap();
        prop_assert!(!out.stats.nb_required);
        prop_assert_eq!(out.stats.nullification_fired, 0);
    }
}
