//! The updatable store, end to end through the `Database` facade:
//!
//! * **overlay equivalence** — every engine behind [`EngineKind`], at
//!   every thread count, must answer queries over (base segments +
//!   delta memtable) exactly as it answers them over a database built
//!   from scratch on the merged triples — the delta must be invisible;
//! * **byte-level equivalence after compaction** — folding the delta
//!   into fresh segments keeps the same dictionary, so the ID-level
//!   result rows before and after compaction must be identical;
//! * **snapshot isolation** — an engine bound before an update keeps
//!   answering from its snapshot, byte-identically, while (and after)
//!   concurrent commits publish new epochs;
//! * **SPARQL 1.1 Update semantics** — `INSERT DATA` / `DELETE DATA` /
//!   `DELETE WHERE` and `;`-sequences through [`Database::update`].

use lbr::baseline::EngineOptions;
use lbr::{parse_query, Database, EngineKind, Term, Triple};

/// Same axis as the cross-engine equivalence suite.
const THREADS_AXIS: [usize; 3] = [1, 2, 8];

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// Sorted decoded rows through the unified `Engine` trait.
fn engine_rows(
    db: &Database,
    kind: EngineKind,
    threads: usize,
    query: &str,
) -> Vec<Vec<Option<String>>> {
    let q = parse_query(query).unwrap();
    let out = db
        .engine_with(
            kind,
            &EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        )
        .execute(&q)
        .unwrap_or_else(|e| panic!("{kind} (threads={threads}) failed on {query}: {e}"));
    let mut rows: Vec<Vec<Option<String>>> = out
        .decode(db.dict())
        .into_iter()
        .map(|r| r.into_iter().map(|t| t.map(|x| x.to_string())).collect())
        .collect();
    rows.sort();
    rows
}

/// Every engine × thread count must answer `query` identically on the
/// delta-resident database and on a from-scratch database over the same
/// logical triples.
#[track_caller]
fn assert_equivalent(updatable: &Database, query: &str) {
    let rebuilt = Database::from_triples(updatable.triples());
    for kind in EngineKind::all() {
        for threads in THREADS_AXIS {
            assert_eq!(
                engine_rows(updatable, kind, threads, query),
                engine_rows(&rebuilt, kind, threads, query),
                "{kind} (threads={threads}) sees the delta on: {query}"
            );
        }
    }
}

const BASE: &str = r#"
    <Jerry> <hasFriend> <Julia> .
    <Jerry> <hasFriend> <Larry> .
    <Julia> <actedIn> <Seinfeld> .
    <Larry> <actedIn> <CurbYourEnthusiasm> .
    <Seinfeld> <location> <NewYorkCity> .
"#;

const QUERIES: [&str; 5] = [
    "SELECT * WHERE { ?s ?p ?o . }",
    "SELECT * WHERE { <Jerry> <hasFriend> ?f . ?f <actedIn> ?show . }",
    "SELECT * WHERE { <Jerry> <hasFriend> ?f . \
       OPTIONAL { ?f <actedIn> ?show . ?show <location> <NewYorkCity> . } }",
    "SELECT DISTINCT ?p WHERE { ?s ?p ?o . } ORDER BY ?p",
    "ASK { ?s <actedIn> ?show . ?show <location> ?where . }",
];

fn updatable() -> Database {
    Database::builder()
        .ntriples(BASE)
        .updatable()
        .build()
        .unwrap()
}

#[test]
fn delta_resident_inserts_and_deletes_are_invisible_to_every_engine() {
    let db = updatable();
    // Phase 1: fast-path delta (all terms exist in their roles).
    db.update(
        "INSERT DATA { <Julia> <hasFriend> <Larry> . <Jerry> <actedIn> <Seinfeld> } ; \
         DELETE DATA { <Larry> <actedIn> <CurbYourEnthusiasm> }",
    )
    .unwrap();
    assert!(
        !db.mutable_store().unwrap().current_ref().delta().is_empty(),
        "updates should be delta-resident, or this test exercises nothing"
    );
    for query in QUERIES {
        assert_equivalent(&db, query);
    }

    // Phase 2: a new term forces the rebuild path (fresh dictionary).
    db.update("INSERT DATA { <Kramer> <hasFriend> <Jerry> . <Kramer> <actedIn> <Seinfeld> }")
        .unwrap();
    // Phase 3: more fast-path churn on top of the rebuilt base.
    db.update(
        "DELETE WHERE { <Jerry> <hasFriend> ?f } ; \
               INSERT DATA { <Jerry> <hasFriend> <Kramer> }",
    )
    .unwrap();
    for query in QUERIES {
        assert_equivalent(&db, query);
    }
}

#[test]
fn compaction_preserves_results_byte_for_byte_and_empties_the_delta() {
    let db = updatable();
    db.update(
        "INSERT DATA { <Julia> <hasFriend> <Larry> } ; \
         DELETE DATA { <Seinfeld> <location> <NewYorkCity> }",
    )
    .unwrap();
    let store = db.mutable_store().unwrap();
    assert!(!store.current_ref().delta().is_empty());

    // Compaction keeps the dictionary, so even the *encoded* rows must
    // be identical — the strongest equivalence the engines can show.
    let before: Vec<_> = QUERIES
        .iter()
        .map(|q| db.engine().execute(&parse_query(q).unwrap()).unwrap().rows)
        .collect();
    let epoch_before = db.epoch();
    db.compact().unwrap();
    assert_eq!(
        db.epoch(),
        epoch_before + 1,
        "compaction publishes an epoch"
    );
    assert!(store.current_ref().delta().is_empty(), "delta folded away");
    for (q, expected) in QUERIES.iter().zip(before) {
        let after = db.engine().execute(&parse_query(q).unwrap()).unwrap().rows;
        assert_eq!(after, expected, "compaction changed ID-level rows of {q}");
    }
    for query in QUERIES {
        assert_equivalent(&db, query);
    }
}

#[test]
fn automatic_compaction_at_the_threshold() {
    let db = updatable();
    let store = db.mutable_store().unwrap();
    store.set_compact_threshold(3);
    // All terms stay in roles the dictionary already knows, so every
    // insert takes the fast delta path (a new role would rebuild and
    // reset the delta, bypassing what this test measures).
    db.insert_triples(vec![t("Julia", "hasFriend", "Larry")])
        .unwrap();
    db.insert_triples(vec![t("Larry", "hasFriend", "Julia")])
        .unwrap();
    assert_eq!(store.current_ref().delta().len(), 2);
    // The third delta entry crosses the threshold: the commit folds.
    db.insert_triples(vec![t("Julia", "actedIn", "CurbYourEnthusiasm")])
        .unwrap();
    assert!(store.current_ref().delta().is_empty(), "auto-compacted");
    assert_eq!(db.len(), 8);
    for query in QUERIES {
        assert_equivalent(&db, query);
    }
}

#[test]
fn snapshot_isolation_pinned_reader_is_unaffected_by_commits() {
    let db = updatable();
    let q = parse_query("SELECT * WHERE { <Jerry> <hasFriend> ?f . }").unwrap();
    // Bind an engine to the current snapshot…
    let pinned = db.engine();
    let before = pinned.execute(&q).unwrap();
    assert_eq!(before.rows.len(), 2);

    // …then commit through every path: fast delta, rebuild, compaction.
    db.update("DELETE WHERE { <Jerry> <hasFriend> ?f }")
        .unwrap();
    db.update("INSERT DATA { <Jerry> <hasFriend> <Kramer> }")
        .unwrap();
    db.compact().unwrap();

    // The pinned engine still answers from its snapshot, byte for byte.
    let after = pinned.execute(&q).unwrap();
    assert_eq!(after.rows, before.rows, "pinned snapshot drifted");
    // A fresh engine sees the new state.
    let fresh: Vec<_> = db
        .engine()
        .execute(&q)
        .unwrap()
        .decode(db.dict())
        .into_iter()
        .map(|r| r[0].clone().unwrap().to_string())
        .collect();
    assert_eq!(fresh, vec!["<Kramer>".to_string()]);
}

#[test]
fn concurrent_readers_and_writer_never_see_torn_state() {
    let db = updatable();
    let writer_rounds = 40;
    std::thread::scope(|scope| {
        let db = &db;
        // Writer: grow and shrink <Newman>'s friend list, one commit at
        // a time. Every commit is atomic, so readers must only ever see
        // a prefix-closed friend set.
        scope.spawn(move || {
            for i in 0..writer_rounds {
                db.update(&format!("INSERT DATA {{ <Jerry> <knows> <P{i}> }}"))
                    .unwrap();
            }
        });
        for _ in 0..3 {
            scope.spawn(move || {
                let q = parse_query("SELECT * WHERE { ?s <knows> ?p . }").unwrap();
                let store = db.mutable_store().unwrap();
                for _ in 0..writer_rounds {
                    // Pin one snapshot per round: engine and decoding
                    // dictionary must come from the same epoch. Every
                    // insert of a new <P_i> term takes the rebuild path
                    // (fresh dictionary + segments), so a torn pairing
                    // would decode garbage or panic.
                    let snap = store.snapshot();
                    let out = EngineKind::Lbr
                        .build_with(snap.catalog(), snap.dict(), &EngineOptions::default())
                        .execute(&q)
                        .unwrap();
                    assert!(out.rows.len() <= writer_rounds);
                    for row in out.decode(snap.dict()) {
                        let p = row[1].clone().expect("bound in a BGP").to_string();
                        assert!(p.starts_with("<P"), "garbage binding {p}");
                    }
                }
            });
        }
    });
    let final_count = db
        .execute("SELECT * WHERE { <Jerry> <knows> ?p . }")
        .unwrap()
        .rows
        .len();
    assert_eq!(final_count, writer_rounds);
}

#[test]
fn update_semantics_through_the_facade() {
    let db = updatable();

    // Inserting an existing triple is a no-op; the epoch holds still.
    let outcome = db
        .update("INSERT DATA { <Jerry> <hasFriend> <Julia> }")
        .unwrap();
    assert_eq!(
        (outcome.inserted, outcome.deleted, outcome.epoch),
        (0, 0, 0)
    );

    // A sequence executes in order: the delete sees the insert.
    let outcome = db
        .update(
            "INSERT DATA { <Jerry> <hasFriend> <George> } ; \
             DELETE WHERE { <Jerry> <hasFriend> ?f }",
        )
        .unwrap();
    assert_eq!(outcome.inserted, 1);
    assert_eq!(outcome.deleted, 3, "Julia, Larry and the fresh George");
    assert!(!db.ask("ASK { <Jerry> <hasFriend> ?f }").unwrap());

    // DELETE WHERE with a join pattern instantiates across patterns.
    let deleted = db
        .update("DELETE WHERE { ?who <actedIn> ?show . ?show <location> ?city }")
        .unwrap()
        .deleted;
    assert_eq!(deleted, 2, "the actedIn and location triples of the match");
    assert!(
        db.ask("ASK { <Larry> <actedIn> ?s }").unwrap(),
        "non-match kept"
    );

    // Deleting triples of unknown terms is a no-op, not an error.
    let outcome = db.update("DELETE DATA { <no> <such> <triple> }").unwrap();
    assert_eq!(outcome.deleted, 0);

    // Read-only databases refuse updates.
    let fixed = Database::from_ntriples(BASE).unwrap();
    assert!(matches!(
        fixed.update("INSERT DATA { <a> <b> <c> }"),
        Err(lbr::UpdateError::ReadOnly)
    ));
    assert_eq!(fixed.epoch(), 0);
}

#[test]
fn a_sequence_commits_atomically_as_one_epoch() {
    let db = updatable();
    let before = db.epoch();
    // Three operations, one request: the whole thing is one commit.
    let outcome = db
        .update(
            "INSERT DATA { <Jerry> <hasFriend> <Newman> } ; \
             DELETE DATA { <Jerry> <hasFriend> <Larry> } ; \
             INSERT DATA { <Larry> <hasFriend> <Jerry> }",
        )
        .unwrap();
    assert_eq!((outcome.inserted, outcome.deleted), (2, 1));
    assert_eq!(
        outcome.epoch,
        before + 1,
        "a whole `;`-sequence is one epoch bump, not one per operation"
    );
    assert!(db.ask("ASK { <Jerry> <hasFriend> <Newman> }").unwrap());
    assert!(!db.ask("ASK { <Jerry> <hasFriend> <Larry> }").unwrap());
    assert!(db.ask("ASK { <Larry> <hasFriend> <Jerry> }").unwrap());
}

#[test]
fn a_net_noop_sequence_keeps_the_epoch_and_logs_nothing() {
    let dir = std::env::temp_dir().join(format!("lbr-atomic-noop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::builder()
        .ntriples(BASE)
        .wal_dir(&dir)
        .build()
        .unwrap();
    // The insert introduces a fresh term, the DELETE WHERE (evaluated on
    // the staged view — exercising the scratch-index fallback, since
    // <Kramer> is not in the snapshot's dictionary) removes it again:
    // net zero, so nothing commits, nothing is logged.
    let outcome = db
        .update(
            "INSERT DATA { <Kramer> <hasFriend> <Jerry> } ; \
             DELETE WHERE { <Kramer> <hasFriend> ?f }",
        )
        .unwrap();
    assert_eq!(
        (outcome.inserted, outcome.deleted, outcome.epoch),
        (1, 1, 0)
    );
    assert!(!db.ask("ASK { <Kramer> ?p ?o }").unwrap());
    let rec = lbr::storage::Wal::inspect(&dir).unwrap();
    assert!(rec.records.is_empty(), "a net no-op reaches the WAL");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn literals_survive_the_update_path() {
    let db = updatable();
    db.update("INSERT DATA { <Seinfeld> <tagline> \"a show about\\nnothing \\\"quoted\\\"\" }")
        .unwrap();
    let rows = db
        .execute("SELECT * WHERE { <Seinfeld> <tagline> ?t . }")
        .unwrap()
        .decode(db.dict())
        .into_iter()
        .map(|r| r[0].clone().unwrap())
        .collect::<Vec<_>>();
    assert_eq!(
        rows,
        vec![Term::literal("a show about\nnothing \"quoted\"")]
    );
    for query in QUERIES {
        assert_equivalent(&db, query);
    }
    db.update("DELETE WHERE { <Seinfeld> <tagline> ?t }")
        .unwrap();
    assert!(!db.ask("ASK { <Seinfeld> <tagline> ?t }").unwrap());
}

/// `wal_dir` + `disk_index` together: the delta memtable layers over
/// **mmap'd** segments instead of heap-built ones. Fast-path updates must
/// be invisible to every engine exactly as on the in-memory overlay, and
/// reopening the same directory + index must replay the WAL to the
/// identical state without rebuilding BitMats from the triples.
#[test]
fn updatable_database_over_a_disk_index_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("lbr-upd-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let idx = dir.join("base.lbr");
    {
        let mem = Database::builder().ntriples(BASE).build().unwrap();
        lbr::bitmat::disk::save_store(mem.store(), &idx).unwrap();
    }
    let wal = dir.join("wal");

    let open = || {
        Database::builder()
            .ntriples(BASE)
            .disk_index(&idx)
            .wal_dir(&wal)
            .build()
            .unwrap()
    };

    let view = {
        let db = open();
        // Fast path: existing terms in existing roles land in the delta
        // over the mmap'd segments.
        let outcome = db
            .update(
                "INSERT DATA { <Julia> <hasFriend> <Larry> } ; \
                 DELETE DATA { <Jerry> <hasFriend> <Larry> }",
            )
            .unwrap();
        assert_eq!((outcome.inserted, outcome.deleted), (1, 1));
        assert!(db.ask("ASK { <Julia> <hasFriend> <Larry> }").unwrap());
        assert!(!db.ask("ASK { <Jerry> <hasFriend> <Larry> }").unwrap());
        // The merged view is what every engine must agree on.
        for query in QUERIES {
            assert_equivalent(&db, query);
        }
        db.triples()
    };

    // Reopen: same index + WAL replay ⇒ byte-identical merged view.
    let db = open();
    assert_eq!(db.triples(), view);
    assert_eq!(db.epoch(), 1, "the one logged record replays");
    for query in QUERIES {
        assert_equivalent(&db, query);
    }
    // And it keeps accepting updates, including a rebuild (fresh term).
    db.update("INSERT DATA { <Kramer> <hasFriend> <Jerry> }")
        .unwrap();
    assert!(db.ask("ASK { <Kramer> <hasFriend> <Jerry> }").unwrap());
    let db2 = open();
    assert!(db2.ask("ASK { <Kramer> <hasFriend> <Jerry> }").unwrap());
    assert_eq!(db2.triples(), db.triples());
    std::fs::remove_dir_all(&dir).unwrap();
}
