//! Property-based checks of the v2 on-disk segment format:
//!
//! * **round-trip exactness** — `save_store` → `DiskCatalog::open` must
//!   reproduce every matrix, row and count of the in-memory
//!   [`lbr::BitMatStore`] bit for bit, across random graphs whose rows
//!   land in both compression classes (dense Runs rows from clique-like
//!   subgraphs, Sparse rows from scattered triples) and whose widths
//!   straddle 32-bit word boundaries;
//! * **corruption safety** — opening a truncated or bit-flipped segment
//!   file either fails cleanly (`BitMatError`) or yields a catalog whose
//!   every load returns a clean `Result`. Never a panic, never UB: the
//!   mmap'd bytes are untrusted input and every offset is bounds-checked
//!   before it is dereferenced.

use lbr::bitmat::disk::save_store;
use lbr::{BitMatStore, Catalog, DiskCatalog, Graph, Term, Triple};
use proptest::prelude::*;
use std::path::PathBuf;

/// Entity universe sized so bit-rows span one to three 32-bit words and
/// IDs hit the 31/32/63/64 boundaries.
const N_ENTITIES: usize = 70;
const N_PREDICATES: usize = 6;

fn ent(i: usize) -> Term {
    Term::iri(format!("e{i:03}"))
}

fn pred(i: usize) -> Term {
    Term::iri(format!("p{i}"))
}

/// Scattered triples: mostly Sparse-compressed rows.
fn arb_sparse() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        (0usize..N_ENTITIES, 0usize..N_PREDICATES, 0usize..N_ENTITIES),
        1..120,
    )
    .prop_map(|ts| {
        ts.into_iter()
            .map(|(s, p, o)| Triple::new(ent(s), pred(p), ent(o)))
            .collect()
    })
}

/// A clique block: every (s, o) pair over a contiguous ID range under
/// one predicate — long runs of set bits, so the hybrid encoder picks
/// Runs. `lo` is drawn near word boundaries to cover rows whose first
/// set bit sits at bit 31/32/63 of the row.
fn arb_dense_block() -> impl Strategy<Value = Vec<Triple>> {
    const BOUNDARY_LOS: [usize; 9] = [0, 1, 30, 31, 32, 33, 62, 63, 64];
    (0usize..BOUNDARY_LOS.len(), 2usize..8, 0usize..N_PREDICATES).prop_map(|(lo_ix, width, p)| {
        let lo = BOUNDARY_LOS[lo_ix];
        let hi = (lo + width).min(N_ENTITIES);
        let mut out = Vec::new();
        for s in lo..hi {
            for o in lo..hi {
                out.push(Triple::new(ent(s), pred(p), ent(o)));
            }
        }
        out
    })
}

fn arb_graph() -> impl Strategy<Value = Vec<Triple>> {
    (arb_sparse(), prop::collection::vec(arb_dense_block(), 0..3)).prop_map(
        |(mut sparse, blocks)| {
            for b in blocks {
                sparse.extend(b);
            }
            sparse
        },
    )
}

struct TempSeg(PathBuf);

impl TempSeg {
    fn new(tag: u64) -> TempSeg {
        TempSeg(std::env::temp_dir().join(format!("lbr-prop-seg-{}-{tag}.lbr", std::process::id())))
    }
}

impl Drop for TempSeg {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Exercises every load and count of a catalog, comparing nothing —
/// the property is that none of them panics on hostile bytes.
fn drain_catalog(cat: &DiskCatalog) {
    let dims = cat.dims();
    for p in 0..dims.n_predicates {
        let _ = cat.load_so(p);
        let _ = cat.load_os(p);
        let _ = cat.count_so(p);
    }
    for s in 0..dims.n_subjects.min(128) {
        let _ = cat.load_po(s);
        let _ = cat.count_po(s);
        for p in 0..dims.n_predicates {
            let _ = cat.load_po_row(s, p);
            let _ = cat.count_po_row(s, p);
        }
    }
    for o in 0..dims.n_objects.min(128) {
        let _ = cat.load_ps(o);
        let _ = cat.count_ps(o);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn roundtrip_reproduces_every_matrix(triples in arb_graph(), tag in any::<u64>()) {
        let graph = Graph::from_triples(triples).encode();
        let store = BitMatStore::build(&graph);
        let seg = TempSeg::new(tag);
        save_store(&store, &seg.0).unwrap();
        let cat = DiskCatalog::open(&seg.0).unwrap();

        prop_assert_eq!(cat.dims(), store.dims());
        let dims = store.dims();
        for p in 0..dims.n_predicates {
            prop_assert_eq!(&cat.load_so(p).unwrap(), &store.so(p).cloned());
            prop_assert_eq!(&cat.load_os(p).unwrap(), &store.os(p).cloned());
            prop_assert_eq!(cat.count_so(p), store.count_so(p));
        }
        for s in 0..dims.n_subjects {
            prop_assert_eq!(&cat.load_po(s).unwrap(), &store.po(s).cloned());
            prop_assert_eq!(cat.count_po(s), store.count_po(s));
            for p in 0..dims.n_predicates {
                prop_assert_eq!(
                    &cat.load_po_row(s, p).unwrap(),
                    &store.po(s).and_then(|m| m.row(p)).cloned()
                );
                prop_assert_eq!(cat.count_po_row(s, p), store.count_po_row(s, p));
            }
        }
        for o in 0..dims.n_objects {
            prop_assert_eq!(&cat.load_ps(o).unwrap(), &store.ps(o).cloned());
            prop_assert_eq!(cat.count_ps(o), store.count_ps(o));
        }
    }

    #[test]
    fn truncated_segments_fail_cleanly(triples in arb_graph(), cut_ppm in 0u64..1_000_000) {
        let graph = Graph::from_triples(triples).encode();
        let store = BitMatStore::build(&graph);
        let seg = TempSeg::new(cut_ppm);
        let full = save_store(&store, &seg.0).unwrap();
        let cut = full * cut_ppm / 1_000_000;
        let bytes = std::fs::read(&seg.0).unwrap();
        std::fs::write(&seg.0, &bytes[..cut as usize]).unwrap();
        // Either the open is rejected or every subsequent read returns a
        // clean Result — bounds checks make truncation an error, not UB.
        if let Ok(cat) = DiskCatalog::open(&seg.0) {
            drain_catalog(&cat);
        }
    }

    #[test]
    fn bitflipped_segments_fail_cleanly(triples in arb_graph(), at_ppm in 0u64..1_000_000, bit in 0u8..8) {
        let graph = Graph::from_triples(triples).encode();
        let store = BitMatStore::build(&graph);
        let seg = TempSeg::new(at_ppm ^ u64::from(bit));
        let full = save_store(&store, &seg.0).unwrap();
        let mut bytes = std::fs::read(&seg.0).unwrap();
        let at = ((full - 1) * at_ppm / 1_000_000) as usize;
        bytes[at] ^= 1 << bit;
        std::fs::write(&seg.0, &bytes).unwrap();
        if let Ok(cat) = DiskCatalog::open(&seg.0) {
            drain_catalog(&cat);
        }
    }
}

/// A v1 header (or any foreign magic) is refused up front with a clear
/// error — not misparsed as v2.
#[test]
fn foreign_magic_is_rejected() {
    let seg = TempSeg::new(u64::MAX);
    let graph = Graph::from_triples(vec![Triple::new(ent(0), pred(0), ent(1))]).encode();
    let store = BitMatStore::build(&graph);
    save_store(&store, &seg.0).unwrap();
    let mut bytes = std::fs::read(&seg.0).unwrap();
    bytes[..8].copy_from_slice(b"LBRBM001");
    std::fs::write(&seg.0, &bytes).unwrap();
    let err = DiskCatalog::open(&seg.0).unwrap_err();
    assert!(err.to_string().contains("v1"), "{err}");
}
