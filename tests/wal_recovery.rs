//! Crash-recovery property, end to end through the `Database` facade:
//! apply a random update workload against a WAL, then simulate a crash
//! by truncating the log at an **arbitrary byte offset** and reopen.
//! The reopened database must equal a from-scratch rebuild over (the
//! checkpoint image if one exists, else the base triples, + the
//! committed WAL prefix) — whole records survive, the torn tail
//! disappears, and nothing else changes. Rebuild commits checkpoint and
//! truncate the log mid-workload, so the surviving WAL holds only the
//! post-checkpoint tail; the crash directories carry the checkpoint
//! file verbatim, exactly as a crashed process's directory would.
//!
//! The store crate unit-tests frame decoding at every offset; this
//! suite drives the same property through the public builder
//! (`wal_dir`), `Database::update`, real files on disk, and reopening —
//! the path a crashed `lbr-server`/`lbr-cli` process would actually
//! take on restart.

use lbr::storage::wal::{self, WAL_FILE};
use lbr::storage::WalOpKind;
use lbr::{Database, Term, Triple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Entities appear as both subjects and objects in the base graph, so
/// most updates ride the fast delta path; the workload still inserts
/// brand-new terms now and then to cover rebuild commits in the log.
const BASE: &str = r#"
    <e0> <p0> <e1> .
    <e1> <p0> <e2> .
    <e2> <p1> <e0> .
    <e3> <p1> <e4> .
    <e4> <p0> <e3> .
    <e0> <p1> <e3> .
"#;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("lbr-wal-recovery-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn open(wal_dir: &Path) -> Database {
    Database::builder()
        .ntriples(BASE)
        .wal_dir(wal_dir)
        .build()
        .unwrap()
}

fn iri(rng: &mut StdRng, fresh_ok: bool) -> String {
    if fresh_ok && rng.random_bool(0.15) {
        format!("n{}", rng.random_range(0u32..1000))
    } else {
        format!("e{}", rng.random_range(0u32..5))
    }
}

/// A random `INSERT DATA`/`DELETE DATA`/`DELETE WHERE` request over the
/// small term universe.
fn random_update(rng: &mut StdRng) -> String {
    let p = format!("p{}", rng.random_range(0u32..2));
    match rng.random_range(0u32..10) {
        0..=5 => {
            let n = rng.random_range(1usize..4);
            let triples: Vec<String> = (0..n)
                .map(|_| format!("<{}> <{p}> <{}>", iri(rng, true), iri(rng, true)))
                .collect();
            format!("INSERT DATA {{ {} }}", triples.join(" . "))
        }
        6..=7 => format!(
            "DELETE DATA {{ <{}> <{p}> <{}> }}",
            iri(rng, false),
            iri(rng, false)
        ),
        _ => format!("DELETE WHERE {{ <{}> <{p}> ?o }}", iri(rng, false)),
    }
}

/// The ground truth: the boot-time base (checkpoint image when present,
/// else the BASE document) with the committed WAL prefix replayed op by
/// op at the term level.
fn replay_prefix(base: &[Triple], bytes: &[u8]) -> (BTreeSet<Triple>, u64) {
    let mut view: BTreeSet<Triple> = base.iter().cloned().collect();
    let recovery = wal::decode(bytes);
    for record in &recovery.records {
        for op in record {
            match op.kind {
                WalOpKind::Insert => {
                    view.insert(op.triple.clone());
                }
                WalOpKind::Delete => {
                    view.remove(&op.triple);
                }
            }
        }
    }
    (view, recovery.records.len() as u64)
}

/// Runs one seeded workload, then checks recovery at the given byte
/// offsets of the resulting log (plus the untruncated log itself).
/// Returns the surviving tail's length so callers can assert the
/// property was exercised across seeds (any single seed may end right
/// after a checkpoint, with an empty tail — itself a case worth
/// covering: recovery purely from the checkpoint image).
fn check_recovery_at_offsets(seed: u64, n_updates: usize, n_offsets: usize) -> usize {
    let work_dir = TempDir::new(&format!("work-{seed}"));
    let mut rng = StdRng::seed_from_u64(seed);
    {
        let db = open(work_dir.path());
        // Group commit amortizes the fsync; recovery must not depend on
        // per-record syncs, only on what reached the file.
        db.mutable_store().unwrap().set_sync(false);
        for _ in 0..n_updates {
            db.update(&random_update(&mut rng)).unwrap();
        }
    }
    let wal_bytes = fs::read(work_dir.path().join(WAL_FILE)).unwrap();
    // The last checkpoint (if any) is part of the crashed process's
    // directory; carry its raw bytes into every crash scenario.
    let ckpt_bytes = fs::read(work_dir.path().join(wal::CHECKPOINT_FILE)).ok();
    let boot_base: Vec<Triple> = match wal::read_checkpoint(work_dir.path()).unwrap() {
        Some(triples) => triples,
        None => lbr::rdf::parse_ntriples(BASE).unwrap(),
    };

    let mut offsets: Vec<usize> = (0..n_offsets)
        .filter(|_| !wal_bytes.is_empty())
        .map(|_| rng.random_range(0usize..wal_bytes.len()))
        .collect();
    offsets.push(0);
    offsets.push(wal_bytes.len());
    for (i, &cut) in offsets.iter().enumerate() {
        let crash_dir = TempDir::new(&format!("crash-{seed}-{i}"));
        fs::write(crash_dir.path().join(WAL_FILE), &wal_bytes[..cut]).unwrap();
        if let Some(ckpt) = &ckpt_bytes {
            fs::write(crash_dir.path().join(wal::CHECKPOINT_FILE), ckpt).unwrap();
        }

        let (expected, committed_records) = replay_prefix(&boot_base, &wal_bytes[..cut]);
        let db = open(crash_dir.path());
        assert_eq!(
            db.triples(),
            expected.iter().cloned().collect::<Vec<_>>(),
            "seed {seed}: reopen after a crash at byte {cut}/{} diverges \
             from the committed prefix",
            wal_bytes.len()
        );
        // Replay re-commits each logged record; each was effective when
        // logged, so the epoch counts exactly the committed records.
        assert_eq!(db.epoch(), committed_records, "seed {seed}, cut {cut}");

        // The truncated tail is gone from disk too: a second reopen
        // (without new updates) sees the identical state.
        drop(db);
        let db2 = open(crash_dir.path());
        assert_eq!(
            db2.triples().len(),
            expected.len(),
            "seed {seed}: recovery truncation did not persist at {cut}"
        );
    }
    wal_bytes.len()
}

#[test]
fn recovery_equals_committed_prefix_across_random_truncations() {
    let mut tail_bytes = 0;
    for seed in 1..=4 {
        tail_bytes += check_recovery_at_offsets(seed, 25, 12);
    }
    assert!(
        tail_bytes > 64,
        "every seed ended on an empty post-checkpoint tail; \
         the torn-record property was not exercised"
    );
}

/// A crash can also happen *between* updates — with a clean log — and
/// after recovery the database must keep accepting updates, appending
/// to the truncated log.
#[test]
fn updates_continue_after_recovery_from_a_torn_tail() {
    let dir = TempDir::new("continue");
    {
        let db = open(dir.path());
        db.update("INSERT DATA { <e0> <p0> <e3> }").unwrap();
        db.update("INSERT DATA { <e1> <p1> <e4> }").unwrap();
    }
    // Tear mid-record: chop 3 bytes off the end.
    let wal_path = dir.path().join(WAL_FILE);
    let bytes = fs::read(&wal_path).unwrap();
    fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

    {
        let db = open(dir.path());
        assert_eq!(db.epoch(), 1, "second record torn away");
        assert!(db.ask("ASK { <e0> <p0> <e3> }").unwrap());
        assert!(!db.ask("ASK { <e1> <p1> <e4> }").unwrap());
        db.update("INSERT DATA { <e2> <p0> <e4> }").unwrap();
    }
    let db = open(dir.path());
    assert_eq!(db.epoch(), 2);
    assert!(db.ask("ASK { <e2> <p0> <e4> }").unwrap());
    assert!(!db.ask("ASK { <e1> <p1> <e4> }").unwrap());
}

/// A rebuild commit (insert with a fresh term) is a compaction point:
/// it checkpoints the merged view and truncates the log, so reopen cost
/// is bounded by the tail since the last fold — and recovery starts
/// from the image, not the original base.
#[test]
fn checkpoint_on_rebuild_truncates_the_log() {
    let dir = TempDir::new("checkpoint");
    {
        let db = open(dir.path());
        // `brand-new` is not in the dictionary ⇒ rebuild ⇒ checkpoint.
        db.update("INSERT DATA { <brand-new> <p0> <e0> }").unwrap();
        let rec = lbr::storage::Wal::inspect(dir.path()).unwrap();
        assert!(rec.records.is_empty(), "checkpoint truncated the log");
        // A later fast-path update lands in the fresh tail.
        db.update("DELETE DATA { <e0> <p1> <e3> }").unwrap();
        assert_eq!(
            lbr::storage::Wal::inspect(dir.path())
                .unwrap()
                .records
                .len(),
            1
        );
    }
    let image = wal::read_checkpoint(dir.path()).unwrap().expect("image");
    assert!(image.contains(&Triple::new(
        Term::iri("brand-new"),
        Term::iri("p0"),
        Term::iri("e0")
    )));

    let db = open(dir.path());
    assert_eq!(db.epoch(), 1, "only the post-checkpoint record replays");
    assert!(db.ask("ASK { <brand-new> <p0> <e0> }").unwrap());
    assert!(!db.ask("ASK { <e0> <p1> <e3> }").unwrap());
    assert_eq!(db.len(), 6, "6 base + 1 insert - 1 delete");
}

/// Ground `DELETE WHERE` and no-op updates must not confuse recovery:
/// only *effective* term-level ops are logged, so a replayed log can
/// never double-apply or resurrect anything.
#[test]
fn only_effective_ops_are_logged_and_replayed() {
    let dir = TempDir::new("effective");
    {
        let db = open(dir.path());
        // Inserting an existing triple and deleting a missing one are
        // both no-ops: nothing may reach the log.
        db.update("INSERT DATA { <e0> <p0> <e1> }").unwrap();
        db.update("DELETE DATA { <e0> <p0> <e4> }").unwrap();
        assert_eq!(db.epoch(), 0);
        // A mixed batch logs only its effective half.
        db.update("INSERT DATA { <e0> <p0> <e1> . <e3> <p0> <e0> }")
            .unwrap();
        assert_eq!(db.epoch(), 1);
    }
    let recovery = lbr::storage::Wal::inspect(dir.path()).unwrap();
    assert_eq!(recovery.records.len(), 1);
    assert_eq!(recovery.records[0].len(), 1, "only the effective insert");
    assert_eq!(
        recovery.records[0][0].triple,
        Triple::new(Term::iri("e3"), Term::iri("p0"), Term::iri("e0"))
    );

    let db = open(dir.path());
    assert_eq!((db.epoch(), db.len()), (1, 7));
}
