//! Concurrency: one shared `Arc<Database>` serving many threads — the
//! exact sharing pattern `lbr-server`'s worker pool relies on, checked
//! here at the library level against a single-threaded oracle.
//!
//! `Engine: Send + Sync` and `Catalog: Sync` make this compile; these
//! tests make it *correct*: 8 threads fire a mix of prepared SELECT /
//! ASK / LIMIT queries (both through `PreparedQuery` re-execution and
//! through the shared `PlanCache`) and every response must be
//! row-identical to the single-threaded answer.

use lbr::datagen::lubm;
use lbr::{Database, PlanCache, QueryOutput};
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 4;

fn lubm_db() -> (Arc<Database>, Vec<String>) {
    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 1,
        departments: 2,
        seed: 7,
    });
    // A mix of forms: every Appendix E SELECT, plus ASK and LIMIT
    // variants of each (the serving workload shapes).
    let mut queries = Vec::new();
    for q in &ds.queries {
        queries.push(q.text.clone());
        queries.push(q.text.replacen("SELECT * WHERE", "ASK", 1));
        queries.push(format!("{} LIMIT 3", q.text));
    }
    let db = Arc::new(Database::from_encoded(ds.graph.encode()));
    (db, queries)
}

/// The single-threaded oracle: the same data, forced to the exact serial
/// code path (`threads = 1`).
fn oracle(queries: &[String]) -> Vec<QueryOutput> {
    let ds = lubm::dataset(&lubm::LubmConfig {
        universities: 1,
        departments: 2,
        seed: 7,
    });
    let db = Database::builder()
        .encoded(ds.graph.encode())
        .threads(1)
        .build()
        .unwrap();
    queries.iter().map(|q| db.execute(q).unwrap()).collect()
}

#[test]
fn eight_threads_on_one_database_match_the_single_threaded_oracle() {
    let (db, queries) = lubm_db();
    let expected = oracle(&queries);

    // Prepare every query once on the shared database; the prepared
    // queries themselves are then shared (`PreparedQuery: Sync`) and
    // re-executed concurrently.
    let prepared: Vec<_> = queries.iter().map(|q| db.prepare(q).unwrap()).collect();
    let cache = PlanCache::new(queries.len());

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let db = Arc::clone(&db);
            let (prepared, queries, expected, cache) = (&prepared, &queries, &expected, &cache);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for i in 0..queries.len() {
                        // Interleave differently per thread so threads are
                        // rarely on the same query at the same time.
                        let i = (i + thread + round) % queries.len();
                        let out = if (thread + round) % 2 == 0 {
                            prepared[i].execute().unwrap()
                        } else {
                            db.execute_cached(cache, &queries[i]).unwrap()
                        };
                        assert_eq!(out.vars, expected[i].vars, "query {i}");
                        assert_eq!(out.rows, expected[i].rows, "query {i}");
                        assert_eq!(
                            out.boolean(),
                            expected[i].boolean(),
                            "query {i} (ASK boolean)"
                        );
                    }
                }
            });
        }
    });

    // Every cache lookup was counted, and the cache never re-planned a
    // query outside the initial (possibly racing) misses.
    let stats = cache.stats();
    assert_eq!(stats.evictions, 0, "capacity fits every query");
    assert!(
        stats.misses <= (THREADS * queries.len()) as u64,
        "misses bounded by racing first lookups: {stats:?}"
    );
    assert!(stats.hits > 0, "repeats must hit: {stats:?}");
}

#[test]
fn plan_cache_shared_across_threads_plans_each_query_once() {
    let (db, queries) = lubm_db();
    let cache = PlanCache::new(queries.len());
    // Warm serially: one miss per distinct query.
    for q in &queries {
        db.execute_cached(&cache, q).unwrap();
    }
    let warm = cache.stats();
    assert_eq!(warm.misses, queries.len() as u64);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (db, queries, cache) = (&db, &queries, &cache);
            scope.spawn(move || {
                for q in queries {
                    db.execute_cached(cache, q).unwrap();
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(
        stats.misses, warm.misses,
        "a warmed cache never re-plans: {stats:?}"
    );
    assert_eq!(
        stats.hits,
        warm.hits + (THREADS * queries.len()) as u64,
        "{stats:?}"
    );
}
